#include "points_to.hh"

#include <deque>

#include "air/logging.hh"
#include "array_keys.hh"
#include "framework/known_api.hh"
#include "util/trace.hh"

namespace sierra::analysis {

using air::Instruction;
using air::InvokeKind;
using air::Method;
using air::Opcode;
using framework::ApiKind;

const ObjSet PointsToResult::_emptySet;

const ObjSet &
PointsToResult::pointsTo(NodeId node, int reg) const
{
    if (node < 0 || node >= static_cast<int>(regPts.size()))
        return _emptySet;
    const auto &regs = regPts[node];
    if (reg < 0 || reg >= static_cast<int>(regs.size()))
        return _emptySet;
    return regs[reg];
}

ConstVal
PointsToResult::constOf(NodeId node, int reg) const
{
    if (node < 0 || node >= static_cast<int>(regConst.size()))
        return {};
    const auto &regs = regConst[node];
    if (reg < 0 || reg >= static_cast<int>(regs.size()))
        return {};
    return regs[reg];
}

FieldKey
PointsToResult::fieldKey(ObjId obj, const air::FieldRef &field) const
{
    const std::string &klass = objects.get(obj).klassName;
    std::string decl = cha.declaringClassOfField(klass, field.fieldName);
    if (decl.empty())
        decl = field.className;
    return FieldKey::intern(keys, decl + "." + field.fieldName);
}

FieldKey
PointsToResult::staticKey(const air::FieldRef &field) const
{
    std::string decl =
        cha.declaringClassOfField(field.className, field.fieldName);
    if (decl.empty())
        decl = field.className;
    return FieldKey::intern(keys, decl + "." + field.fieldName);
}

ObjId
PointsToResult::looperOfAction(int action_id) const
{
    const Action &a = actions.get(action_id);
    switch (a.affinity) {
      case ThreadAffinity::Background:
        return -1;
      case ThreadAffinity::MainLooper:
        return mainLooperObj;
      case ThreadAffinity::CustomLooper:
        return a.looperObj >= 0 ? a.looperObj : mainLooperObj;
    }
    return mainLooperObj;
}

int
PointsToResult::numRealActions() const
{
    int n = 0;
    for (const Action &a : actions.all()) {
        if (a.kind != ActionKind::HarnessRoot)
            ++n;
    }
    return n;
}

/**
 * The worklist engine. One instance per run; all state lives in the
 * PointsToResult being built plus the dependency maps below.
 *
 * Delta propagation: every instruction's last-execution signature (the
 * sum of its inputs' monotone version counters) is cached per node.
 * Inputs unchanged => re-execution is provably a no-op (every transfer
 * is a monotone union/merge and every enqueue is guarded by "changed"),
 * so the visit is skipped without perturbing traversal order — the
 * property the byte-identical-report contract rests on.
 */
class PointsToAnalysis::Engine
{
  public:
    Engine(const framework::App &app, const EntryPlan &plan,
           PointsToOptions options)
        : _app(app), _plan(plan), _opts(options), _apis(app.module())
    {
    }

    std::unique_ptr<PointsToResult> run();

  private:
    static constexpr uint64_t kNoSig = ~uint64_t{0};

    bool asMode() const
    {
        return _opts.ctx.policy == ContextPolicy::ActionSensitive;
    }

    void
    enqueue(NodeId n)
    {
        if (!_queued[n]) {
            _queued[n] = true;
            _worklist.push_back(n);
        }
    }

    NodeId internNode(const Method *method, CtxId ctx);

    bool addObj(NodeId n, int reg, ObjId o);
    bool addObjs(NodeId n, int reg, const ObjSet &objs);
    bool mergeConst(NodeId n, int reg, ConstVal v);

    /** Merge a value into returnPts and push through return flows. */
    void addReturn(NodeId n, const ObjSet &objs);
    void addReturnFlow(NodeId src, NodeId dst_node, int dst_reg);

    bool addFieldObjs(ObjId obj, FieldId key, const ObjSet &objs);
    bool addStaticObjs(FieldId key, const ObjSet &objs);

    CtxId heapCtxOf(CtxId ctx);
    /** Context for a callee per the active policy. `action_id` is the
     *  action the callee runs under (-1 outside AS mode). */
    CtxId selectCtx(bool is_virtual, CtxId caller, ObjId recv,
                    SiteId site, int action_id);

    /** Create (or fold onto an ancestor) an action. */
    int spawnAction(ActionKind kind, int creator, SiteId site,
                    const std::string &cls, const std::string &cb);
    /** Create the entry node for an action and bind its receiver. */
    NodeId spawnEntry(int action_id, const Method *entry, ObjId this_obj,
                      NodeId creator_node, SiteId site);

    bool addActionToNode(NodeId n, int action);

    void processNode(NodeId n);
    bool processInstr(NodeId n, const Method *m, int idx);
    bool processInvoke(NodeId n, const Method *m, int idx);
    bool handleEventSite(NodeId n, const Method *m, int idx,
                         const EntryEventSite &ev);
    bool handleIntrinsic(NodeId n, const Method *m, int idx,
                         ApiKind kind);
    bool normalCall(NodeId n, const Method *m, int idx);

    /** Bind call args into a callee node; true if anything changed. */
    bool bindArgs(NodeId caller, const Instruction &instr,
                  const Method *target, NodeId callee, bool has_this);

    const std::string &classOf(ObjId o) const
    {
        return _r->objects.get(o).klassName;
    }

    /** Constant "what" recorded on message objects. */
    void mergeFieldConst(ObjId obj, FieldId key, ConstVal v);
    ConstVal fieldConstOf(ObjId obj, FieldId key) const;

    // --- interned-key memoization (engine-local; single-threaded) ---

    /** Memoized canonical key for (object, field-ref of one instr). */
    FieldId
    fieldIdOf(ObjId o, const air::FieldRef &field)
    {
        auto key = std::make_pair(static_cast<const void *>(&field), o);
        auto it = _fieldKeyMemo.find(key);
        if (it != _fieldKeyMemo.end())
            return it->second;
        FieldId id = _r->fieldKey(o, field).id;
        _fieldKeyMemo.emplace(key, id);
        return id;
    }

    FieldId
    staticIdOf(const air::FieldRef &field)
    {
        const void *key = &field;
        auto it = _staticKeyMemo.find(key);
        if (it != _staticKeyMemo.end())
            return it->second;
        FieldId id = _r->staticKey(field).id;
        _staticKeyMemo.emplace(key, id);
        return id;
    }

    FieldId
    wildcardIdOf(ObjId o)
    {
        auto it = _objWildcard.find(o);
        if (it != _objWildcard.end())
            return it->second;
        FieldId id = _r->internKey(arrayWildcardKey(classOf(o)),
                                   FieldKey::kArray | FieldKey::kWildcard)
                         .id;
        _objWildcard.emplace(o, id);
        return id;
    }

    /** Exact array-element key for `o`. Only writes (`record=true`,
     *  the ArrayPut path that creates the fieldPts entry) register the
     *  key in the per-object element index — the delta-friendly
     *  replacement for the old string prefix scan over fieldPts, which
     *  likewise only saw entries writes had created. */
    FieldId
    elemIdOf(ObjId o, int64_t idx, bool record)
    {
        FieldId id =
            _r->internKey(arrayElementKey(classOf(o), idx),
                          FieldKey::kArray)
                .id;
        _elemWildcard.emplace(id, wildcardIdOf(o));
        if (record) {
            auto &elems = _arrayElemKeys[o];
            bool known = false;
            for (FieldId e : elems)
                known = known || e == id;
            if (!known)
                elems.push_back(id);
        }
        return id;
    }

    FieldId
    internFixed(const char *s)
    {
        return _r->internKey(s).id;
    }

    /** Heap-backed copy of a set (temporaries never bloat the arena). */
    static ObjSet
    copyOf(const ObjSet &s)
    {
        ObjSet t;
        t.unionWith(s);
        return t;
    }

    // --- delta-propagation signatures ---

    /** Version of one register as an instruction input: points-to set
     *  mutation counter plus the (monotone) constant lattice state. */
    uint64_t
    inSig(NodeId n, int reg) const
    {
        const auto &regs = _r->regPts[n];
        if (reg < 0 || reg >= static_cast<int>(regs.size()))
            return 0;
        return regs[reg].version() +
               static_cast<uint64_t>(_r->regConst[n][reg].state);
    }

    /** Sum of the monotone versions of everything the instruction's
     *  transfer function reads. Unchanged sum => unchanged inputs =>
     *  re-execution is a no-op and is skipped. Opcodes with no dynamic
     *  inputs return a constant (run exactly once). */
    uint64_t
    instrSignature(NodeId n, const Instruction &instr) const
    {
        switch (instr.op) {
          case Opcode::Move:
          case Opcode::Return:
          case Opcode::PutStatic:
            return inSig(n, instr.srcs[0]);
          case Opcode::GetField:
            return inSig(n, instr.srcs[0]) + _fieldEpoch;
          case Opcode::PutField:
            return inSig(n, instr.srcs[0]) + inSig(n, instr.srcs[1]);
          case Opcode::GetStatic:
            return _staticEpoch;
          case Opcode::ArrayGet:
            return inSig(n, instr.srcs[0]) + inSig(n, instr.srcs[1]) +
                   _fieldEpoch;
          case Opcode::ArrayPut:
            return inSig(n, instr.srcs[0]) + inSig(n, instr.srcs[1]) +
                   inSig(n, instr.srcs[2]);
          case Opcode::Invoke: {
            // Calls read argument registers, the node's action set
            // (spawn creators / propagation), handler->looper bindings,
            // field constants (message "what") and the Thread.$target
            // points-to set. Deliberately NOT the coarse _fieldEpoch:
            // ordinary field writes don't feed any Invoke transfer, so
            // they must not force re-execution of every call site.
            uint64_t s = _r->cg.actionsOf(n).version() + _constEpoch +
                         _spawnFieldEpoch + _looperEpoch;
            for (int r : instr.srcs)
                s += inSig(n, r);
            return s;
          }
          default:
            return 0; // no dynamic inputs: execute once
        }
    }

    const framework::App &_app;
    const EntryPlan &_plan;
    PointsToOptions _opts;
    framework::KnownApis _apis;
    std::unique_ptr<PointsToResult> _r;

    std::deque<NodeId> _worklist;
    std::vector<char> _queued;

    std::map<std::pair<ObjId, FieldId>, ObjSet> _fieldReaders;
    std::map<FieldId, ObjSet> _staticReaders;
    //! callee -> (dst node, dst reg) forwarding of return values
    std::map<NodeId, std::vector<std::pair<NodeId, int>>> _returnFlows;
    std::map<std::pair<ObjId, FieldId>, ConstVal> _fieldConst;

    //! per-node, per-instruction last-execution signature
    std::vector<std::vector<uint64_t>> _instrSig;
    //! bumped on every fieldPts / field-constant change
    uint64_t _fieldEpoch{0};
    //! bumped on every staticPts change
    uint64_t _staticEpoch{0};
    //! bumped on every handlerLooper change
    uint64_t _looperEpoch{0};
    //! bumped on every field-constant change only (what Invoke
    //! intrinsics read via fieldConstOf — message "what" joins)
    uint64_t _constEpoch{0};
    //! bumped when the Thread.$target field points-to set changes (the
    //! only fieldPts entry any Invoke handler reads)
    uint64_t _spawnFieldEpoch{0};

    struct PtrObjHash {
        size_t
        operator()(const std::pair<const void *, ObjId> &p) const
        {
            return std::hash<const void *>()(p.first) * 1000003u ^
                   std::hash<int>()(p.second);
        }
    };
    std::unordered_map<std::pair<const void *, ObjId>, FieldId,
                       PtrObjHash>
        _fieldKeyMemo;
    std::unordered_map<const void *, FieldId> _staticKeyMemo;
    std::unordered_map<ObjId, FieldId> _objWildcard;
    //! exact element key -> its array's wildcard key (for notify)
    std::unordered_map<FieldId, FieldId> _elemWildcard;
    //! per array object: exact element keys seen so far
    std::unordered_map<ObjId, std::vector<FieldId>> _arrayElemKeys;
    FieldId _threadTargetKey{util::StringInterner::kInvalid};
    FieldId _messageWhatKey{util::StringInterner::kInvalid};
    bool _warnedActionCap{false};
};

NodeId
PointsToAnalysis::Engine::internNode(const Method *method, CtxId ctx)
{
    NodeId existing = _r->cg.findNode(method, ctx);
    if (existing >= 0)
        return existing;
    NodeId n = _r->cg.internNode(method, ctx);
    _r->regPts.emplace_back();
    {
        auto &regs = _r->regPts.back();
        int nregs = method->numRegisters();
        regs.reserve(static_cast<size_t>(nregs));
        for (int i = 0; i < nregs; ++i)
            regs.emplace_back(&_r->arena);
    }
    _r->returnPts.emplace_back(&_r->arena);
    _r->regConst.emplace_back(method->numRegisters());
    _instrSig.emplace_back(
        method->hasBody() ? static_cast<size_t>(method->numInstrs()) : 0,
        kNoSig);
    _queued.push_back(false);
    enqueue(n);
    return n;
}

bool
PointsToAnalysis::Engine::addObj(NodeId n, int reg, ObjId o)
{
    if (reg < 0 || reg >= static_cast<int>(_r->regPts[n].size()))
        return false;
    bool added = _r->regPts[n][reg].insert(o);
    if (added)
        enqueue(n);
    return added;
}

bool
PointsToAnalysis::Engine::addObjs(NodeId n, int reg, const ObjSet &objs)
{
    if (reg < 0 || reg >= static_cast<int>(_r->regPts[n].size()))
        return false;
    bool changed = _r->regPts[n][reg].unionWith(objs);
    if (changed)
        enqueue(n);
    return changed;
}

bool
PointsToAnalysis::Engine::mergeConst(NodeId n, int reg, ConstVal v)
{
    if (reg < 0 || reg >= static_cast<int>(_r->regConst[n].size()))
        return false;
    if (v.state == ConstVal::State::Bottom)
        return false;
    ConstVal &cur = _r->regConst[n][reg];
    if (cur.state == ConstVal::State::Top)
        return false;
    if (cur.state == ConstVal::State::Bottom) {
        cur = v;
        return true;
    }
    // cur is Const
    if (v.state == ConstVal::State::Const && v.value == cur.value)
        return false;
    cur.state = ConstVal::State::Top;
    return true;
}

void
PointsToAnalysis::Engine::addReturn(NodeId n, const ObjSet &objs)
{
    if (!_r->returnPts[n].unionWith(objs))
        return;
    auto it = _returnFlows.find(n);
    if (it == _returnFlows.end())
        return;
    for (auto [dst_node, dst_reg] : it->second)
        addObjs(dst_node, dst_reg, _r->returnPts[n]);
}

void
PointsToAnalysis::Engine::addReturnFlow(NodeId src, NodeId dst_node,
                                        int dst_reg)
{
    auto &flows = _returnFlows[src];
    for (auto &[dn, dr] : flows) {
        if (dn == dst_node && dr == dst_reg)
            return;
    }
    flows.emplace_back(dst_node, dst_reg);
    addObjs(dst_node, dst_reg, _r->returnPts[src]);
}

bool
PointsToAnalysis::Engine::addFieldObjs(ObjId obj, FieldId key,
                                       const ObjSet &objs)
{
    auto [entry, created] =
        _r->fieldPts.try_emplace({obj, key}, ObjSet(&_r->arena));
    (void)created;
    bool changed = entry->second.unionWith(objs);
    if (changed) {
        ++_fieldEpoch;
        if (key == _threadTargetKey)
            ++_spawnFieldEpoch;
        auto notify = [&](FieldId k) {
            auto it = _fieldReaders.find({obj, k});
            if (it != _fieldReaders.end()) {
                for (NodeId reader : it->second)
                    enqueue(reader);
            }
        };
        notify(key);
        // A write to an exact array element must also wake readers
        // registered on the wildcard: an unknown-index ArrayGet scans
        // the exact keys that exist when it runs, so a later-created
        // $elem#i entry would otherwise never reach it.
        auto wit = _elemWildcard.find(key);
        if (wit != _elemWildcard.end())
            notify(wit->second);
    }
    return changed;
}

bool
PointsToAnalysis::Engine::addStaticObjs(FieldId key, const ObjSet &objs)
{
    auto [entry, created] =
        _r->staticPts.try_emplace(key, ObjSet(&_r->arena));
    (void)created;
    bool changed = entry->second.unionWith(objs);
    if (changed) {
        ++_staticEpoch;
        auto it = _staticReaders.find(key);
        if (it != _staticReaders.end()) {
            for (NodeId reader : it->second)
                enqueue(reader);
        }
    }
    return changed;
}

CtxId
PointsToAnalysis::Engine::heapCtxOf(CtxId ctx)
{
    const ContextData &d = _r->contexts.get(ctx);
    return _r->contexts.make(asMode() ? d.actionId : -1, d.elems,
                             _opts.ctx.heapK);
}

CtxId
PointsToAnalysis::Engine::selectCtx(bool is_virtual, CtxId caller,
                                    ObjId recv, SiteId site,
                                    int action_id)
{
    const int k = _opts.ctx.k;
    auto obj_ctx = [&]() {
        std::vector<SiteId> elems;
        if (recv >= 0) {
            const HeapObject &o = _r->objects.get(recv);
            elems.push_back(o.site); // kNoSite for non-site objects
            for (SiteId e : _r->contexts.get(o.heapCtx).elems)
                elems.push_back(e);
        }
        return _r->contexts.make(action_id, std::move(elems), k);
    };
    auto cfa_ctx = [&]() {
        CtxId pushed = _r->contexts.pushElem(caller, site, k);
        return _r->contexts.withAction(pushed, action_id);
    };

    switch (_opts.ctx.policy) {
      case ContextPolicy::Insensitive:
        return _r->contexts.make(-1, {}, 0);
      case ContextPolicy::KCfa:
        return cfa_ctx();
      case ContextPolicy::KObj:
        return is_virtual ? obj_ctx()
                          : _r->contexts.withAction(caller, action_id);
      case ContextPolicy::Hybrid:
      case ContextPolicy::ActionSensitive:
        return is_virtual ? obj_ctx() : cfa_ctx();
    }
    panic("unreachable context policy");
}

int
PointsToAnalysis::Engine::spawnAction(ActionKind kind, int creator,
                                      SiteId site, const std::string &cls,
                                      const std::string &cb)
{
    // Fold repost chains: an ancestor action created at the same site
    // with the same entry is the same static action (e.g. a Runnable
    // that postDelayed()s itself, paper Fig. 8).
    int cur = creator;
    while (cur >= 0) {
        const Action &a = _r->actions.get(cur);
        if (a.creationSite == site && a.entryClass == cls &&
            a.callbackName == cb) {
            return cur;
        }
        cur = a.creator;
    }
    if (_r->actions.size() >= _opts.maxActions) {
        if (!_warnedActionCap) {
            warn("action cap (", _opts.maxActions,
                 ") reached; folding further actions");
            _warnedActionCap = true;
        }
        for (const Action &a : _r->actions.all()) {
            if (a.creationSite == site && a.entryClass == cls &&
                a.callbackName == cb) {
                return a.id;
            }
        }
        return _r->rootAction;
    }
    return _r->actions.create(kind, creator, site, cls, cb);
}

NodeId
PointsToAnalysis::Engine::spawnEntry(int action_id, const Method *entry,
                                     ObjId this_obj, NodeId creator_node,
                                     SiteId site)
{
    CtxId caller_ctx = _r->cg.node(creator_node).ctx;
    CtxId cc = selectCtx(this_obj >= 0, caller_ctx, this_obj, site,
                         asMode() ? action_id : -1);
    NodeId n2 = internNode(entry, cc);
    Action &a = _r->actions.get(action_id);
    if (a.entryNode < 0)
        a.entryNode = n2;
    if (addActionToNode(n2, action_id))
        enqueue(n2);
    _r->cg.addSpawn({creator_node, site, action_id});
    if (this_obj >= 0 && !entry->isStatic())
        addObj(n2, entry->thisReg(), this_obj);
    return n2;
}

bool
PointsToAnalysis::Engine::addActionToNode(NodeId n, int action)
{
    bool added = _r->cg.addAction(n, action);
    if (added)
        enqueue(n);
    return added;
}

void
PointsToAnalysis::Engine::mergeFieldConst(ObjId obj, FieldId key,
                                          ConstVal v)
{
    if (v.state == ConstVal::State::Bottom)
        return;
    ConstVal &cur = _fieldConst[{obj, key}];
    if (cur.state == ConstVal::State::Bottom) {
        cur = v;
        ++_fieldEpoch;
        ++_constEpoch;
    } else if (cur.state == ConstVal::State::Const &&
               (v.state != ConstVal::State::Const ||
                v.value != cur.value)) {
        cur.state = ConstVal::State::Top;
        ++_fieldEpoch;
        ++_constEpoch;
    }
}

ConstVal
PointsToAnalysis::Engine::fieldConstOf(ObjId obj, FieldId key) const
{
    auto it = _fieldConst.find({obj, key});
    return it == _fieldConst.end() ? ConstVal{} : it->second;
}

std::unique_ptr<PointsToResult>
PointsToAnalysis::Engine::run()
{
    _r = std::make_unique<PointsToResult>(_app.module(),
                                          _opts.sharedCha);
    _r->options = _opts;
    _r->mainLooperObj =
        _r->objects.singleton(framework::names::looper, kMainLooper);
    _threadTargetKey = internFixed("java.lang.Thread.$target");
    _messageWhatKey = internFixed("android.os.Message.what");

    SIERRA_ASSERT(_plan.mainMethod, "entry plan without a main method");
    _r->rootAction = _r->actions.create(
        ActionKind::HarnessRoot, -1, kNoSite,
        _plan.mainMethod->owner()->name(), _plan.mainMethod->name());
    CtxId root_ctx =
        _r->contexts.make(asMode() ? _r->rootAction : -1, {}, 0);
    _r->rootNode = internNode(_plan.mainMethod, root_ctx);
    _r->actions.get(_r->rootAction).entryNode = _r->rootNode;
    addActionToNode(_r->rootNode, _r->rootAction);

    SIERRA_TRACE_SPAN(span, "pta", "pta.solve",
                      util::trace::arg("entry",
                                       _plan.mainMethod->name()));
    while (!_worklist.empty()) {
        NodeId n = _worklist.front();
        _worklist.pop_front();
        _queued[n] = false;
        ++_r->stats.worklistIterations;
        processNode(n);
    }
    return std::move(_r);
}

void
PointsToAnalysis::Engine::processNode(NodeId n)
{
    const Method *m = _r->cg.node(n).method;
    if (!m->hasBody())
        return;
    bool changed = true;
    int guard = 0;
    while (changed) {
        changed = false;
        ++_r->stats.localPasses;
        for (int i = 0; i < m->numInstrs(); ++i) {
            const Instruction &instr = m->instr(i);
            uint64_t sig = instrSignature(n, instr);
            // Index _instrSig[n] afresh on every access: processInstr
            // can intern new nodes, reallocating the outer vector.
            if (sig == _instrSig[n][i]) {
                ++_r->stats.deltaSkips;
                continue;
            }
            _instrSig[n][i] = sig;
            ++_r->stats.instrVisits;
            changed |= processInstr(n, m, i);
        }
        if (++guard > 1000)
            panic("local fixpoint divergence in ", m->qualifiedName());
    }
}

bool
PointsToAnalysis::Engine::processInstr(NodeId n, const Method *m,
                                       int idx)
{
    const Instruction &instr = m->instr(idx);
    auto pts = [&](int reg) -> const ObjSet & {
        return _r->pointsTo(n, reg);
    };
    // Interned eagerly on purpose: downstream stages (access
    // extraction, locksets) intern the same (method, instr) sites and
    // the numeric id order — visit order here — is part of the
    // byte-identical-report contract.
    SiteId site = _r->sites.intern(m, idx);

    switch (instr.op) {
      case Opcode::ConstInt:
        return mergeConst(
            n, instr.dst,
            {ConstVal::State::Const, instr.intValue});
      case Opcode::ConstStr:
        return addObj(n, instr.dst,
                      _r->objects.syntheticObject("java.lang.Str", site));
      case Opcode::ConstNull:
      case Opcode::Nop:
      case Opcode::Throw:
      case Opcode::Goto:
      case Opcode::If:
      case Opcode::IfZ:
      case Opcode::ReturnVoid:
      case Opcode::MonitorEnter:
      case Opcode::MonitorExit:
        return false;
      case Opcode::Move: {
        bool c = addObjs(n, instr.dst, pts(instr.srcs[0]));
        c |= mergeConst(n, instr.dst, _r->constOf(n, instr.srcs[0]));
        return c;
      }
      case Opcode::BinOp:
      case Opcode::UnOp:
        // Conservative: arithmetic results are non-constant references
        // never flow here, so only poison the const lattice.
        return mergeConst(n, instr.dst,
                          {ConstVal::State::Top, 0});
      case Opcode::New: {
        ObjId o = _r->objects.siteObject(
            instr.typeName, site, heapCtxOf(_r->cg.node(n).ctx));
        return addObj(n, instr.dst, o);
      }
      case Opcode::NewArray: {
        std::string klass =
            (instr.typeName.empty() ? "int" : instr.typeName) + "[]";
        ObjId o = _r->objects.siteObject(klass, site,
                                         heapCtxOf(_r->cg.node(n).ctx));
        return addObj(n, instr.dst, o);
      }
      case Opcode::GetField: {
        bool changed = false;
        // dst may alias the base register; never mutate the set being
        // iterated (bitset growth would invalidate the end sentinel).
        const ObjSet bases = copyOf(pts(instr.srcs[0]));
        for (ObjId o : bases) {
            FieldId key = fieldIdOf(o, instr.field);
            _fieldReaders.try_emplace({o, key}, ObjSet(&_r->arena))
                .first->second.insert(n);
            auto it = _r->fieldPts.find({o, key});
            if (it != _r->fieldPts.end())
                changed |= addObjs(n, instr.dst, it->second);
            changed |= mergeConst(n, instr.dst, fieldConstOf(o, key));
        }
        return changed;
      }
      case Opcode::PutField: {
        for (ObjId o : pts(instr.srcs[0])) {
            FieldId key = fieldIdOf(o, instr.field);
            addFieldObjs(o, key, pts(instr.srcs[1]));
            mergeFieldConst(o, key, _r->constOf(n, instr.srcs[1]));
        }
        return false;
      }
      case Opcode::GetStatic: {
        FieldId key = staticIdOf(instr.field);
        _staticReaders.try_emplace(key, ObjSet(&_r->arena))
            .first->second.insert(n);
        auto it = _r->staticPts.find(key);
        if (it == _r->staticPts.end())
            return false;
        return addObjs(n, instr.dst, it->second);
      }
      case Opcode::PutStatic:
        addStaticObjs(staticIdOf(instr.field), pts(instr.srcs[0]));
        return false;
      case Opcode::ArrayGet: {
        bool changed = false;
        ConstVal idx = _r->constOf(n, instr.srcs[1]);
        bool sensitive = _opts.indexSensitiveArrays;
        // Same aliasing guard as GetField: dst can be the array register.
        const ObjSet arrays = copyOf(pts(instr.srcs[0]));
        for (ObjId o : arrays) {
            std::vector<FieldId> keys{wildcardIdOf(o)};
            if (sensitive && idx.isConst()) {
                keys.push_back(elemIdOf(o, idx.value, false));
            } else if (sensitive) {
                // Unknown index: read every known exact element too
                // (per-object element index replaces the old string
                // prefix scan over fieldPts).
                auto eit = _arrayElemKeys.find(o);
                if (eit != _arrayElemKeys.end()) {
                    for (FieldId e : eit->second)
                        keys.push_back(e);
                }
            }
            for (FieldId key : keys) {
                _fieldReaders.try_emplace({o, key}, ObjSet(&_r->arena))
                    .first->second.insert(n);
                auto it = _r->fieldPts.find({o, key});
                if (it != _r->fieldPts.end())
                    changed |= addObjs(n, instr.dst, it->second);
            }
        }
        return changed;
      }
      case Opcode::ArrayPut: {
        ConstVal idx = _r->constOf(n, instr.srcs[1]);
        for (ObjId o : pts(instr.srcs[0])) {
            FieldId key = _opts.indexSensitiveArrays && idx.isConst()
                              ? elemIdOf(o, idx.value, true)
                              : wildcardIdOf(o);
            addFieldObjs(o, key, pts(instr.srcs[2]));
        }
        return false;
      }
      case Opcode::Return:
        addReturn(n, pts(instr.srcs[0]));
        return false;
      case Opcode::Invoke:
        return processInvoke(n, m, idx);
    }
    return false;
}

bool
PointsToAnalysis::Engine::processInvoke(NodeId n, const Method *m,
                                        int idx)
{
    if (const EntryEventSite *ev = _plan.siteAt(m, idx))
        return handleEventSite(n, m, idx, *ev);

    const Instruction &instr = m->instr(idx);
    ApiKind kind = _apis.classify(instr.method);
    if (kind != ApiKind::None)
        return handleIntrinsic(n, m, idx, kind);
    return normalCall(n, m, idx);
}

bool
PointsToAnalysis::Engine::bindArgs(NodeId caller,
                                   const Instruction &instr,
                                   const Method *target, NodeId callee,
                                   bool has_this)
{
    bool changed = false;
    size_t arg_base = has_this ? 1 : 0;
    if (has_this && !target->isStatic() && !instr.srcs.empty()) {
        changed |= addObjs(callee, target->thisReg(),
                           _r->pointsTo(caller, instr.srcs[0]));
    }
    for (int p = 0; p < target->numParams(); ++p) {
        size_t src_idx = arg_base + static_cast<size_t>(p);
        if (src_idx >= instr.srcs.size())
            break;
        int src_reg = instr.srcs[src_idx];
        changed |= addObjs(callee, target->paramReg(p),
                           _r->pointsTo(caller, src_reg));
        changed |= mergeConst(callee, target->paramReg(p),
                              _r->constOf(caller, src_reg));
    }
    return changed;
}

bool
PointsToAnalysis::Engine::handleEventSite(NodeId n, const Method *m,
                                          int idx,
                                          const EntryEventSite &ev)
{
    const Instruction &instr = m->instr(idx);
    SiteId site = _r->sites.intern(m, idx);

    int act = spawnAction(ev.kind, _r->rootAction, site, ev.targetClass,
                          ev.callbackName);
    {
        Action &a = _r->actions.get(act);
        a.affinity = ThreadAffinity::MainLooper;
        a.widgetId = ev.widgetId;
        a.looperObj = _r->mainLooperObj;
    }

    // Copy: spawnEntry interns nodes, which may reallocate regPts.
    const ObjSet receivers = copyOf(_r->pointsTo(n, instr.srcs[0]));
    for (ObjId o : receivers) {
        const Method *target = _r->cha.resolveVirtual(
            classOf(o), instr.method.methodName);
        if (!target)
            continue;
        // Even a bodyless (framework default) callback is a real action
        // node in the SHBG; only spawn a CG node when there is a body.
        if (!target->hasBody()) {
            _r->cg.addSpawn({n, site, act});
            continue;
        }
        NodeId n2 = spawnEntry(act, target, o, n, site);
        bindArgs(n, instr, target, n2, true);
    }
    return false;
}

bool
PointsToAnalysis::Engine::handleIntrinsic(NodeId n, const Method *m,
                                          int idx, ApiKind kind)
{
    const Instruction &instr = m->instr(idx);
    SiteId site = _r->sites.intern(m, idx);
    // Copies throughout: intrinsics intern nodes/actions while iterating,
    // which may reallocate the backing vectors.
    auto pts = [&](size_t i) -> ObjSet {
        if (i >= instr.srcs.size())
            return ObjSet{};
        return copyOf(_r->pointsTo(n, instr.srcs[i]));
    };
    const ObjSet creators = copyOf(_r->cg.actionsOf(n));

    auto looper_of_handler = [&](ObjId h) {
        auto it = _r->handlerLooper.find(h);
        return it == _r->handlerLooper.end() ? _r->mainLooperObj
                                             : it->second;
    };
    auto set_looper = [&](Action &a, ObjId looper) {
        a.looperObj = looper;
        a.affinity = looper == _r->mainLooperObj
                         ? ThreadAffinity::MainLooper
                         : ThreadAffinity::CustomLooper;
    };
    auto spawn_runnable = [&](ActionKind akind, ObjId runnable,
                              ObjId looper, ThreadAffinity affinity) {
        const Method *run =
            _r->cha.resolveVirtual(classOf(runnable), "run");
        if (!run || !run->hasBody())
            return;
        for (int creator : creators) {
            int act = spawnAction(akind, creator, site,
                                  classOf(runnable), "run");
            Action &a = _r->actions.get(act);
            a.affinity = affinity;
            if (affinity != ThreadAffinity::Background)
                set_looper(a, looper);
            spawnEntry(act, run, runnable, n, site);
        }
    };

    switch (kind) {
      case ApiKind::HandlerPost: {
        for (ObjId h : pts(0)) {
            ObjId looper = looper_of_handler(h);
            for (ObjId r : pts(1)) {
                spawn_runnable(ActionKind::PostedRunnable, r, looper,
                               looper == _r->mainLooperObj
                                   ? ThreadAffinity::MainLooper
                                   : ThreadAffinity::CustomLooper);
            }
        }
        return false;
      }
      case ApiKind::ViewPost:
      case ApiKind::RunOnUiThread: {
        for (ObjId r : pts(1)) {
            spawn_runnable(ActionKind::PostedRunnable, r,
                           _r->mainLooperObj,
                           ThreadAffinity::MainLooper);
        }
        return false;
      }
      case ApiKind::HandlerSendMessage: {
        for (ObjId h : pts(0)) {
            const Method *target =
                _r->cha.resolveVirtual(classOf(h), "handleMessage");
            if (!target || !target->hasBody())
                continue;
            ObjId looper = looper_of_handler(h);
            // Constant message "what" (on-demand constant propagation,
            // paper Section 5).
            ConstVal what;
            bool empty_message =
                instr.method.methodName == "sendEmptyMessage";
            if (empty_message) {
                what = _r->constOf(n, instr.srcs.size() > 1
                                          ? instr.srcs[1]
                                          : -1);
            } else {
                for (ObjId msg : pts(1)) {
                    ConstVal w = fieldConstOf(msg, _messageWhatKey);
                    if (what.state == ConstVal::State::Bottom)
                        what = w;
                    else if (!(what.isConst() && w.isConst() &&
                               what.value == w.value))
                        what.state = ConstVal::State::Top;
                }
            }
            for (int creator : creators) {
                int act = spawnAction(ActionKind::PostedMessage, creator,
                                      site, classOf(h), "handleMessage");
                Action &a = _r->actions.get(act);
                set_looper(a, looper);
                if (what.isConst())
                    a.messageWhat = static_cast<int>(what.value);
                NodeId n2 = spawnEntry(act, target, h, n, site);
                if (target->numParams() >= 1) {
                    if (empty_message) {
                        ObjId msg = _r->objects.syntheticObject(
                            framework::names::message, site);
                        if (what.isConst()) {
                            mergeFieldConst(msg, _messageWhatKey, what);
                        }
                        addObj(n2, target->paramReg(0), msg);
                    } else {
                        addObjs(n2, target->paramReg(0), pts(1));
                    }
                }
            }
        }
        return false;
      }
      case ApiKind::AsyncTaskExecute: {
        for (ObjId t : pts(0)) {
            const std::string &cls = classOf(t);
            struct Phase {
                const char *cb;
                ActionKind kind;
                ThreadAffinity affinity;
            };
            static const Phase phases[] = {
                {"onPreExecute", ActionKind::AsyncPre,
                 ThreadAffinity::MainLooper},
                {"doInBackground", ActionKind::AsyncBackground,
                 ThreadAffinity::Background},
                {"onPostExecute", ActionKind::AsyncPost,
                 ThreadAffinity::MainLooper},
            };
            NodeId bg_node = -1;
            for (const auto &phase : phases) {
                const Method *target =
                    _r->cha.resolveVirtual(cls, phase.cb);
                if (!target || !target->hasBody())
                    continue;
                for (int creator : creators) {
                    int act = spawnAction(phase.kind, creator, site, cls,
                                          phase.cb);
                    Action &a = _r->actions.get(act);
                    a.affinity = phase.affinity;
                    if (phase.affinity == ThreadAffinity::MainLooper)
                        a.looperObj = _r->mainLooperObj;
                    NodeId n2 = spawnEntry(act, target, t, n, site);
                    if (phase.kind == ActionKind::AsyncBackground) {
                        bg_node = n2;
                    } else if (phase.kind == ActionKind::AsyncPost &&
                               bg_node >= 0 &&
                               target->numParams() >= 1) {
                        // doInBackground's result flows into
                        // onPostExecute's parameter.
                        addReturnFlow(bg_node, n2, target->paramReg(0));
                    }
                }
            }
        }
        return false;
      }
      case ApiKind::ThreadStart: {
        for (ObjId t : pts(0)) {
            const Method *run = _r->cha.resolveVirtual(classOf(t), "run");
            if (run && run->hasBody()) {
                spawn_runnable(ActionKind::ThreadRun, t, -1,
                               ThreadAffinity::Background);
                continue;
            }
            // Plain java.lang.Thread wrapping a Runnable.
            FieldId key = _threadTargetKey;
            _fieldReaders.try_emplace({t, key}, ObjSet(&_r->arena))
                .first->second.insert(n);
            auto it = _r->fieldPts.find({t, key});
            if (it == _r->fieldPts.end())
                continue;
            const ObjSet targets = copyOf(it->second);
            for (ObjId r : targets) {
                spawn_runnable(ActionKind::ThreadRun, r, -1,
                               ThreadAffinity::Background);
            }
        }
        return false;
      }
      case ApiKind::ExecutorExecute: {
        for (ObjId r : pts(1)) {
            spawn_runnable(ActionKind::ExecutorRun, r, -1,
                           ThreadAffinity::Background);
        }
        return false;
      }
      case ApiKind::ThreadInit: {
        if (instr.srcs.size() >= 2) {
            for (ObjId t : pts(0)) {
                addFieldObjs(t, _threadTargetKey, pts(1));
            }
        }
        return false;
      }
      case ApiKind::HandlerInit: {
        for (ObjId h : pts(0)) {
            ObjId looper = _r->mainLooperObj;
            const ObjSet loopers = pts(1);
            if (instr.srcs.size() >= 2 && !loopers.empty())
                looper = *loopers.begin();
            auto [it, inserted] = _r->handlerLooper.emplace(h, looper);
            if (inserted || it->second != looper) {
                it->second = looper;
                ++_looperEpoch;
            }
        }
        return false;
      }
      case ApiKind::RegisterReceiver: {
        for (ObjId r : pts(1)) {
            const Method *target =
                _r->cha.resolveVirtual(classOf(r), "onReceive");
            if (!target || !target->hasBody())
                continue;
            for (int creator : creators) {
                int act = spawnAction(ActionKind::Receive, creator, site,
                                      classOf(r), "onReceive");
                Action &a = _r->actions.get(act);
                a.affinity = ThreadAffinity::MainLooper;
                a.looperObj = _r->mainLooperObj;
                NodeId n2 = spawnEntry(act, target, r, n, site);
                if (target->numParams() >= 1)
                    addObjs(n2, target->paramReg(0), pts(0));
                if (target->numParams() >= 2) {
                    addObj(n2, target->paramReg(1),
                           _r->objects.singleton(
                               framework::names::intent,
                               kSystemIntent));
                }
            }
        }
        return false;
      }
      case ApiKind::BindService: {
        for (ObjId c : pts(2)) {
            const Method *target = _r->cha.resolveVirtual(
                classOf(c), "onServiceConnected");
            if (!target || !target->hasBody())
                continue;
            for (int creator : creators) {
                int act = spawnAction(ActionKind::ServiceConnected,
                                      creator, site, classOf(c),
                                      "onServiceConnected");
                Action &a = _r->actions.get(act);
                a.affinity = ThreadAffinity::MainLooper;
                a.looperObj = _r->mainLooperObj;
                NodeId n2 = spawnEntry(act, target, c, n, site);
                if (target->numParams() >= 1) {
                    addObj(n2, target->paramReg(0),
                           _r->objects.syntheticObject(
                               "android.os.IBinder", site));
                }
            }
        }
        return false;
      }
      case ApiKind::StartService: {
        for (const auto &svc : _app.manifest().services) {
            for (const char *cb : {"onCreate", "onStartCommand"}) {
                const Method *target =
                    _r->cha.resolveVirtual(svc.className, cb);
                if (!target || !target->hasBody())
                    continue;
                for (int creator : creators) {
                    int act = spawnAction(ActionKind::ServiceCreate,
                                          creator, site, svc.className,
                                          cb);
                    Action &a = _r->actions.get(act);
                    a.affinity = ThreadAffinity::MainLooper;
                    a.looperObj = _r->mainLooperObj;
                    ObjId self = _r->objects.singleton(svc.className,
                                                       kSystemIntent);
                    NodeId n2 = spawnEntry(act, target, self, n, site);
                    if (target->numParams() >= 1) {
                        addObj(n2, target->paramReg(0),
                               _r->objects.syntheticObject(
                                   framework::names::intent, site));
                    }
                }
            }
        }
        return false;
      }
      case ApiKind::FindViewById: {
        ConstVal id = instr.srcs.size() > 1
                          ? _r->constOf(n, instr.srcs[1])
                          : ConstVal{};
        if (id.isConst() && _opts.ctx.inflatedViewContext) {
            // Look the id up across the app's layouts.
            const framework::Widget *widget = nullptr;
            for (const auto &[activity, layout] : _app.layouts()) {
                widget = layout.byId(static_cast<int>(id.value));
                if (widget)
                    break;
            }
            std::string klass =
                widget ? widget->widgetClass : framework::names::view;
            return addObj(n, instr.dst,
                          _r->objects.inflatedView(
                              klass, static_cast<int>(id.value)));
        }
        return addObj(n, instr.dst,
                      _r->objects.syntheticObject(
                          framework::names::view, site));
      }
      case ApiKind::SetListener: {
        std::string cb = framework::KnownApis::listenerCallback(
            instr.method.methodName);
        int widget_id = -1;
        for (ObjId v : pts(0)) {
            const HeapObject &vo = _r->objects.get(v);
            if (vo.kind == ObjKind::InflatedView) {
                widget_id = vo.viewId;
                break;
            }
        }
        for (ObjId l : pts(1)) {
            const Method *target =
                _r->cha.resolveVirtual(classOf(l), cb);
            if (!target || !target->hasBody())
                continue;
            for (int creator : creators) {
                int act = spawnAction(ActionKind::Gui, creator, site,
                                      classOf(l), cb);
                Action &a = _r->actions.get(act);
                a.affinity = ThreadAffinity::MainLooper;
                a.looperObj = _r->mainLooperObj;
                if (a.widgetId < 0)
                    a.widgetId = widget_id;
                NodeId n2 = spawnEntry(act, target, l, n, site);
                if (target->numParams() >= 1)
                    addObjs(n2, target->paramReg(0), pts(0));
            }
        }
        return false;
      }
      case ApiKind::MessageObtain: {
        if (instr.dst < 0)
            return false;
        return addObj(n, instr.dst,
                      _r->objects.syntheticObject(
                          framework::names::message, site));
      }
      case ApiKind::HandlerThreadGetLooper: {
        // One abstract looper per HandlerThread object; handlers bound
        // to it deliver to that thread's queue (CustomLooper affinity).
        if (instr.dst < 0)
            return false;
        bool changed = false;
        for (ObjId t : pts(0)) {
            changed |= addObj(
                n, instr.dst,
                _r->objects.singleton(framework::names::looper,
                                      kHandlerThreadLooperBase + t));
        }
        return changed;
      }
      case ApiKind::LooperMain:
      case ApiKind::LooperMy: {
        // myLooper() is approximated by the main looper.
        if (instr.dst < 0)
            return false;
        return addObj(n, instr.dst, _r->mainLooperObj);
      }
      case ApiKind::HandlerRemove:
      case ApiKind::SetContentView:
      case ApiKind::UnregisterReceiver:
      case ApiKind::SendBroadcast:
      case ApiKind::StartActivity:
      case ApiKind::IntentSetClass:
      case ApiKind::PendingIntentGetActivity:
      case ApiKind::PendingIntentGetService:
      case ApiKind::PendingIntentGetBroadcast:
      case ApiKind::PendingIntentSend:
      case ApiKind::ObjectInit:
      case ApiKind::NullCheck:
      case ApiKind::None:
        return false;
    }
    return false;
}

bool
PointsToAnalysis::Engine::normalCall(NodeId n, const Method *m, int idx)
{
    const Instruction &instr = m->instr(idx);
    SiteId site = _r->sites.intern(m, idx);
    CtxId caller_ctx = _r->cg.node(n).ctx;
    int caller_action =
        asMode() ? _r->contexts.get(caller_ctx).actionId : -1;
    bool changed = false;

    auto connect = [&](const Method *target, CtxId cc, bool has_this) {
        if (!target->hasBody())
            return;
        NodeId n2 = internNode(target, cc);
        _r->cg.addEdge(n, site, n2);
        for (int a : _r->cg.actionsOf(n))
            addActionToNode(n2, a);
        bindArgs(n, instr, target, n2, has_this);
        if (instr.dst >= 0 && target->returnType().isReference())
            addReturnFlow(n2, n, instr.dst);
    };

    switch (instr.invokeKind) {
      case InvokeKind::Static: {
        const Method *target = _r->cha.resolveStatic(
            instr.method.className, instr.method.methodName);
        if (!target)
            return false;
        CtxId cc = selectCtx(false, caller_ctx, -1, site, caller_action);
        connect(target, cc, false);
        return changed;
      }
      case InvokeKind::Special: {
        const Method *target = _r->cha.resolveVirtual(
            instr.method.className, instr.method.methodName);
        if (!target)
            return false;
        CtxId cc = selectCtx(false, caller_ctx, -1, site, caller_action);
        connect(target, cc, true);
        return changed;
      }
      case InvokeKind::Virtual:
      case InvokeKind::Interface: {
        if (instr.srcs.empty())
            return false;
        // Copy: interning callee nodes may reallocate regPts.
        const ObjSet receivers =
            copyOf(_r->pointsTo(n, instr.srcs[0]));
        for (ObjId o : receivers) {
            const Method *target = _r->cha.resolveVirtual(
                classOf(o), instr.method.methodName);
            if (!target || !target->hasBody())
                continue;
            CtxId cc =
                selectCtx(true, caller_ctx, o, site, caller_action);
            NodeId n2 = internNode(target, cc);
            _r->cg.addEdge(n, site, n2);
            for (int a : _r->cg.actionsOf(n))
                addActionToNode(n2, a);
            // Precise per-receiver this-binding.
            if (!target->isStatic())
                addObj(n2, target->thisReg(), o);
            bool arg_changed = false;
            for (int p = 0; p < target->numParams(); ++p) {
                size_t src_idx = 1 + static_cast<size_t>(p);
                if (src_idx >= instr.srcs.size())
                    break;
                arg_changed |= addObjs(
                    n2, target->paramReg(p),
                    _r->pointsTo(n, instr.srcs[src_idx]));
                arg_changed |= mergeConst(
                    n2, target->paramReg(p),
                    _r->constOf(n, instr.srcs[src_idx]));
            }
            (void)arg_changed;
            if (instr.dst >= 0 && target->returnType().isReference())
                addReturnFlow(n2, n, instr.dst);
        }
        return changed;
      }
    }
    return changed;
}

PointsToAnalysis::PointsToAnalysis(const framework::App &app,
                                   const EntryPlan &plan,
                                   PointsToOptions options)
    : _engine(std::make_unique<Engine>(app, plan, options))
{
}

PointsToAnalysis::~PointsToAnalysis() = default;

std::unique_ptr<PointsToResult>
PointsToAnalysis::run()
{
    return _engine->run();
}

} // namespace sierra::analysis
