#include "points_to.hh"

#include <deque>

#include "air/logging.hh"
#include "array_keys.hh"
#include "framework/known_api.hh"
#include "util/trace.hh"

namespace sierra::analysis {

using air::Instruction;
using air::InvokeKind;
using air::Method;
using air::Opcode;
using framework::ApiKind;

const std::set<ObjId> PointsToResult::_emptySet;

const std::set<ObjId> &
PointsToResult::pointsTo(NodeId node, int reg) const
{
    if (node < 0 || node >= static_cast<int>(regPts.size()))
        return _emptySet;
    const auto &regs = regPts[node];
    if (reg < 0 || reg >= static_cast<int>(regs.size()))
        return _emptySet;
    return regs[reg];
}

ConstVal
PointsToResult::constOf(NodeId node, int reg) const
{
    if (node < 0 || node >= static_cast<int>(regConst.size()))
        return {};
    const auto &regs = regConst[node];
    if (reg < 0 || reg >= static_cast<int>(regs.size()))
        return {};
    return regs[reg];
}

std::string
PointsToResult::fieldKey(ObjId obj, const air::FieldRef &field) const
{
    const std::string &klass = objects.get(obj).klassName;
    std::string decl = cha.declaringClassOfField(klass, field.fieldName);
    if (decl.empty())
        decl = field.className;
    return decl + "." + field.fieldName;
}

std::string
PointsToResult::staticKey(const air::FieldRef &field) const
{
    std::string decl =
        cha.declaringClassOfField(field.className, field.fieldName);
    if (decl.empty())
        decl = field.className;
    return decl + "." + field.fieldName;
}

ObjId
PointsToResult::looperOfAction(int action_id) const
{
    const Action &a = actions.get(action_id);
    switch (a.affinity) {
      case ThreadAffinity::Background:
        return -1;
      case ThreadAffinity::MainLooper:
        return mainLooperObj;
      case ThreadAffinity::CustomLooper:
        return a.looperObj >= 0 ? a.looperObj : mainLooperObj;
    }
    return mainLooperObj;
}

int
PointsToResult::numRealActions() const
{
    int n = 0;
    for (const Action &a : actions.all()) {
        if (a.kind != ActionKind::HarnessRoot)
            ++n;
    }
    return n;
}

/**
 * The worklist engine. One instance per run; all state lives in the
 * PointsToResult being built plus the dependency maps below.
 */
class PointsToAnalysis::Engine
{
  public:
    Engine(const framework::App &app, const EntryPlan &plan,
           PointsToOptions options)
        : _app(app), _plan(plan), _opts(options), _apis(app.module())
    {
    }

    std::unique_ptr<PointsToResult> run();

  private:
    bool asMode() const
    {
        return _opts.ctx.policy == ContextPolicy::ActionSensitive;
    }

    void
    enqueue(NodeId n)
    {
        if (!_queued[n]) {
            _queued[n] = true;
            _worklist.push_back(n);
        }
    }

    NodeId internNode(const Method *method, CtxId ctx);

    bool addObj(NodeId n, int reg, ObjId o);
    bool addObjs(NodeId n, int reg, const std::set<ObjId> &objs);
    bool mergeConst(NodeId n, int reg, ConstVal v);

    /** Merge a value into returnPts and push through return flows. */
    void addReturn(NodeId n, const std::set<ObjId> &objs);
    void addReturnFlow(NodeId src, NodeId dst_node, int dst_reg);

    bool addFieldObjs(ObjId obj, const std::string &key,
                      const std::set<ObjId> &objs);
    bool addStaticObjs(const std::string &key,
                       const std::set<ObjId> &objs);

    CtxId heapCtxOf(CtxId ctx);
    /** Context for a callee per the active policy. `action_id` is the
     *  action the callee runs under (-1 outside AS mode). */
    CtxId selectCtx(bool is_virtual, CtxId caller, ObjId recv,
                    SiteId site, int action_id);

    /** Create (or fold onto an ancestor) an action. */
    int spawnAction(ActionKind kind, int creator, SiteId site,
                    const std::string &cls, const std::string &cb);
    /** Create the entry node for an action and bind its receiver. */
    NodeId spawnEntry(int action_id, const Method *entry, ObjId this_obj,
                      NodeId creator_node, SiteId site);

    bool addActionToNode(NodeId n, int action);

    void processNode(NodeId n);
    bool processInstr(NodeId n, const Method *m, int idx);
    bool processInvoke(NodeId n, const Method *m, int idx);
    bool handleEventSite(NodeId n, const Method *m, int idx,
                         const EntryEventSite &ev);
    bool handleIntrinsic(NodeId n, const Method *m, int idx,
                         ApiKind kind);
    bool normalCall(NodeId n, const Method *m, int idx);

    /** Bind call args into a callee node; true if anything changed. */
    bool bindArgs(NodeId caller, const Instruction &instr,
                  const Method *target, NodeId callee, bool has_this);

    const std::string &classOf(ObjId o) const
    {
        return _r->objects.get(o).klassName;
    }

    /** Constant "what" recorded on message objects. */
    void mergeFieldConst(ObjId obj, const std::string &key, ConstVal v);
    ConstVal fieldConstOf(ObjId obj, const std::string &key) const;

    const framework::App &_app;
    const EntryPlan &_plan;
    PointsToOptions _opts;
    framework::KnownApis _apis;
    std::unique_ptr<PointsToResult> _r;

    std::deque<NodeId> _worklist;
    std::vector<char> _queued;

    std::map<std::pair<ObjId, std::string>, std::set<NodeId>>
        _fieldReaders;
    std::map<std::string, std::set<NodeId>> _staticReaders;
    //! callee -> (dst node, dst reg) forwarding of return values
    std::map<NodeId, std::vector<std::pair<NodeId, int>>> _returnFlows;
    std::map<std::pair<ObjId, std::string>, ConstVal> _fieldConst;
    bool _warnedActionCap{false};
};

NodeId
PointsToAnalysis::Engine::internNode(const Method *method, CtxId ctx)
{
    NodeId existing = _r->cg.findNode(method, ctx);
    if (existing >= 0)
        return existing;
    NodeId n = _r->cg.internNode(method, ctx);
    _r->regPts.emplace_back(method->numRegisters());
    _r->returnPts.emplace_back();
    _r->regConst.emplace_back(method->numRegisters());
    _queued.push_back(false);
    enqueue(n);
    return n;
}

bool
PointsToAnalysis::Engine::addObj(NodeId n, int reg, ObjId o)
{
    if (reg < 0 || reg >= static_cast<int>(_r->regPts[n].size()))
        return false;
    bool added = _r->regPts[n][reg].insert(o).second;
    if (added)
        enqueue(n);
    return added;
}

bool
PointsToAnalysis::Engine::addObjs(NodeId n, int reg,
                                  const std::set<ObjId> &objs)
{
    bool changed = false;
    for (ObjId o : objs)
        changed |= addObj(n, reg, o);
    return changed;
}

bool
PointsToAnalysis::Engine::mergeConst(NodeId n, int reg, ConstVal v)
{
    if (reg < 0 || reg >= static_cast<int>(_r->regConst[n].size()))
        return false;
    if (v.state == ConstVal::State::Bottom)
        return false;
    ConstVal &cur = _r->regConst[n][reg];
    if (cur.state == ConstVal::State::Top)
        return false;
    if (cur.state == ConstVal::State::Bottom) {
        cur = v;
        return true;
    }
    // cur is Const
    if (v.state == ConstVal::State::Const && v.value == cur.value)
        return false;
    cur.state = ConstVal::State::Top;
    return true;
}

void
PointsToAnalysis::Engine::addReturn(NodeId n, const std::set<ObjId> &objs)
{
    bool changed = false;
    for (ObjId o : objs)
        changed |= _r->returnPts[n].insert(o).second;
    if (!changed)
        return;
    auto it = _returnFlows.find(n);
    if (it == _returnFlows.end())
        return;
    for (auto [dst_node, dst_reg] : it->second)
        addObjs(dst_node, dst_reg, _r->returnPts[n]);
}

void
PointsToAnalysis::Engine::addReturnFlow(NodeId src, NodeId dst_node,
                                        int dst_reg)
{
    auto &flows = _returnFlows[src];
    for (auto &[dn, dr] : flows) {
        if (dn == dst_node && dr == dst_reg)
            return;
    }
    flows.emplace_back(dst_node, dst_reg);
    addObjs(dst_node, dst_reg, _r->returnPts[src]);
}

bool
PointsToAnalysis::Engine::addFieldObjs(ObjId obj, const std::string &key,
                                       const std::set<ObjId> &objs)
{
    auto &dst = _r->fieldPts[{obj, key}];
    bool changed = false;
    for (ObjId o : objs)
        changed |= dst.insert(o).second;
    if (changed) {
        auto notify = [&](const std::string &k) {
            auto it = _fieldReaders.find({obj, k});
            if (it != _fieldReaders.end()) {
                for (NodeId reader : it->second)
                    enqueue(reader);
            }
        };
        notify(key);
        // A write to an exact array element must also wake readers
        // registered on the wildcard: an unknown-index ArrayGet scans
        // the exact keys that exist when it runs, so a later-created
        // $elem#i entry would otherwise never reach it.
        size_t elem_pos = key.find(".$elem#");
        if (elem_pos != std::string::npos)
            notify(key.substr(0, elem_pos) + ".$elems");
    }
    return changed;
}

bool
PointsToAnalysis::Engine::addStaticObjs(const std::string &key,
                                        const std::set<ObjId> &objs)
{
    auto &dst = _r->staticPts[key];
    bool changed = false;
    for (ObjId o : objs)
        changed |= dst.insert(o).second;
    if (changed) {
        auto it = _staticReaders.find(key);
        if (it != _staticReaders.end()) {
            for (NodeId reader : it->second)
                enqueue(reader);
        }
    }
    return changed;
}

CtxId
PointsToAnalysis::Engine::heapCtxOf(CtxId ctx)
{
    const ContextData &d = _r->contexts.get(ctx);
    return _r->contexts.make(asMode() ? d.actionId : -1, d.elems,
                             _opts.ctx.heapK);
}

CtxId
PointsToAnalysis::Engine::selectCtx(bool is_virtual, CtxId caller,
                                    ObjId recv, SiteId site,
                                    int action_id)
{
    const int k = _opts.ctx.k;
    auto obj_ctx = [&]() {
        std::vector<SiteId> elems;
        if (recv >= 0) {
            const HeapObject &o = _r->objects.get(recv);
            elems.push_back(o.site); // kNoSite for non-site objects
            for (SiteId e : _r->contexts.get(o.heapCtx).elems)
                elems.push_back(e);
        }
        return _r->contexts.make(action_id, std::move(elems), k);
    };
    auto cfa_ctx = [&]() {
        CtxId pushed = _r->contexts.pushElem(caller, site, k);
        return _r->contexts.withAction(pushed, action_id);
    };

    switch (_opts.ctx.policy) {
      case ContextPolicy::Insensitive:
        return _r->contexts.make(-1, {}, 0);
      case ContextPolicy::KCfa:
        return cfa_ctx();
      case ContextPolicy::KObj:
        return is_virtual ? obj_ctx()
                          : _r->contexts.withAction(caller, action_id);
      case ContextPolicy::Hybrid:
      case ContextPolicy::ActionSensitive:
        return is_virtual ? obj_ctx() : cfa_ctx();
    }
    panic("unreachable context policy");
}

int
PointsToAnalysis::Engine::spawnAction(ActionKind kind, int creator,
                                      SiteId site, const std::string &cls,
                                      const std::string &cb)
{
    // Fold repost chains: an ancestor action created at the same site
    // with the same entry is the same static action (e.g. a Runnable
    // that postDelayed()s itself, paper Fig. 8).
    int cur = creator;
    while (cur >= 0) {
        const Action &a = _r->actions.get(cur);
        if (a.creationSite == site && a.entryClass == cls &&
            a.callbackName == cb) {
            return cur;
        }
        cur = a.creator;
    }
    if (_r->actions.size() >= _opts.maxActions) {
        if (!_warnedActionCap) {
            warn("action cap (", _opts.maxActions,
                 ") reached; folding further actions");
            _warnedActionCap = true;
        }
        for (const Action &a : _r->actions.all()) {
            if (a.creationSite == site && a.entryClass == cls &&
                a.callbackName == cb) {
                return a.id;
            }
        }
        return _r->rootAction;
    }
    return _r->actions.create(kind, creator, site, cls, cb);
}

NodeId
PointsToAnalysis::Engine::spawnEntry(int action_id, const Method *entry,
                                     ObjId this_obj, NodeId creator_node,
                                     SiteId site)
{
    CtxId caller_ctx = _r->cg.node(creator_node).ctx;
    CtxId cc = selectCtx(this_obj >= 0, caller_ctx, this_obj, site,
                         asMode() ? action_id : -1);
    NodeId n2 = internNode(entry, cc);
    Action &a = _r->actions.get(action_id);
    if (a.entryNode < 0)
        a.entryNode = n2;
    if (addActionToNode(n2, action_id))
        enqueue(n2);
    _r->cg.addSpawn({creator_node, site, action_id});
    if (this_obj >= 0 && !entry->isStatic())
        addObj(n2, entry->thisReg(), this_obj);
    return n2;
}

bool
PointsToAnalysis::Engine::addActionToNode(NodeId n, int action)
{
    bool added = _r->cg.addAction(n, action);
    if (added)
        enqueue(n);
    return added;
}

void
PointsToAnalysis::Engine::mergeFieldConst(ObjId obj,
                                          const std::string &key,
                                          ConstVal v)
{
    if (v.state == ConstVal::State::Bottom)
        return;
    ConstVal &cur = _fieldConst[{obj, key}];
    if (cur.state == ConstVal::State::Bottom) {
        cur = v;
    } else if (cur.state == ConstVal::State::Const &&
               (v.state != ConstVal::State::Const ||
                v.value != cur.value)) {
        cur.state = ConstVal::State::Top;
    }
}

ConstVal
PointsToAnalysis::Engine::fieldConstOf(ObjId obj,
                                       const std::string &key) const
{
    auto it = _fieldConst.find({obj, key});
    return it == _fieldConst.end() ? ConstVal{} : it->second;
}

std::unique_ptr<PointsToResult>
PointsToAnalysis::Engine::run()
{
    _r = std::make_unique<PointsToResult>(_app.module());
    _r->options = _opts;
    _r->mainLooperObj =
        _r->objects.singleton(framework::names::looper, kMainLooper);

    SIERRA_ASSERT(_plan.mainMethod, "entry plan without a main method");
    _r->rootAction = _r->actions.create(
        ActionKind::HarnessRoot, -1, kNoSite,
        _plan.mainMethod->owner()->name(), _plan.mainMethod->name());
    CtxId root_ctx =
        _r->contexts.make(asMode() ? _r->rootAction : -1, {}, 0);
    _r->rootNode = internNode(_plan.mainMethod, root_ctx);
    _r->actions.get(_r->rootAction).entryNode = _r->rootNode;
    addActionToNode(_r->rootNode, _r->rootAction);

    SIERRA_TRACE_SPAN(span, "pta", "pta.solve",
                      util::trace::arg("entry",
                                       _plan.mainMethod->name()));
    while (!_worklist.empty()) {
        NodeId n = _worklist.front();
        _worklist.pop_front();
        _queued[n] = false;
        ++_r->stats.worklistIterations;
        processNode(n);
    }
    return std::move(_r);
}

void
PointsToAnalysis::Engine::processNode(NodeId n)
{
    const Method *m = _r->cg.node(n).method;
    if (!m->hasBody())
        return;
    bool changed = true;
    int guard = 0;
    while (changed) {
        changed = false;
        ++_r->stats.localPasses;
        _r->stats.instrVisits += m->numInstrs();
        for (int i = 0; i < m->numInstrs(); ++i)
            changed |= processInstr(n, m, i);
        if (++guard > 1000)
            panic("local fixpoint divergence in ", m->qualifiedName());
    }
}

bool
PointsToAnalysis::Engine::processInstr(NodeId n, const Method *m,
                                       int idx)
{
    const Instruction &instr = m->instr(idx);
    auto pts = [&](int reg) -> const std::set<ObjId> & {
        return _r->pointsTo(n, reg);
    };
    SiteId site = _r->sites.intern(m, idx);

    switch (instr.op) {
      case Opcode::ConstInt:
        return mergeConst(
            n, instr.dst,
            {ConstVal::State::Const, instr.intValue});
      case Opcode::ConstStr:
        return addObj(n, instr.dst,
                      _r->objects.syntheticObject("java.lang.Str", site));
      case Opcode::ConstNull:
      case Opcode::Nop:
      case Opcode::Throw:
      case Opcode::Goto:
      case Opcode::If:
      case Opcode::IfZ:
      case Opcode::ReturnVoid:
      case Opcode::MonitorEnter:
      case Opcode::MonitorExit:
        return false;
      case Opcode::Move: {
        bool c = addObjs(n, instr.dst, pts(instr.srcs[0]));
        c |= mergeConst(n, instr.dst, _r->constOf(n, instr.srcs[0]));
        return c;
      }
      case Opcode::BinOp:
      case Opcode::UnOp:
        // Conservative: arithmetic results are non-constant references
        // never flow here, so only poison the const lattice.
        return mergeConst(n, instr.dst,
                          {ConstVal::State::Top, 0});
      case Opcode::New: {
        ObjId o = _r->objects.siteObject(
            instr.typeName, site, heapCtxOf(_r->cg.node(n).ctx));
        return addObj(n, instr.dst, o);
      }
      case Opcode::NewArray: {
        std::string klass =
            (instr.typeName.empty() ? "int" : instr.typeName) + "[]";
        ObjId o = _r->objects.siteObject(klass, site,
                                         heapCtxOf(_r->cg.node(n).ctx));
        return addObj(n, instr.dst, o);
      }
      case Opcode::GetField: {
        bool changed = false;
        for (ObjId o : pts(instr.srcs[0])) {
            std::string key = _r->fieldKey(o, instr.field);
            _fieldReaders[{o, key}].insert(n);
            auto it = _r->fieldPts.find({o, key});
            if (it != _r->fieldPts.end())
                changed |= addObjs(n, instr.dst, it->second);
            changed |= mergeConst(n, instr.dst, fieldConstOf(o, key));
        }
        return changed;
      }
      case Opcode::PutField: {
        for (ObjId o : pts(instr.srcs[0])) {
            std::string key = _r->fieldKey(o, instr.field);
            addFieldObjs(o, key, pts(instr.srcs[1]));
            mergeFieldConst(o, key, _r->constOf(n, instr.srcs[1]));
        }
        return false;
      }
      case Opcode::GetStatic: {
        std::string key = _r->staticKey(instr.field);
        _staticReaders[key].insert(n);
        auto it = _r->staticPts.find(key);
        if (it == _r->staticPts.end())
            return false;
        return addObjs(n, instr.dst, it->second);
      }
      case Opcode::PutStatic:
        addStaticObjs(_r->staticKey(instr.field), pts(instr.srcs[0]));
        return false;
      case Opcode::ArrayGet: {
        bool changed = false;
        ConstVal idx = _r->constOf(n, instr.srcs[1]);
        bool sensitive = _opts.indexSensitiveArrays;
        for (ObjId o : pts(instr.srcs[0])) {
            const std::string klass = classOf(o);
            std::vector<std::string> keys{arrayWildcardKey(klass)};
            if (sensitive && idx.isConst()) {
                keys.push_back(arrayElementKey(klass, idx.value));
            } else if (sensitive) {
                // Unknown index: read every known exact element too.
                std::string prefix = klass + ".$elem#";
                for (auto it = _r->fieldPts.lower_bound({o, prefix});
                     it != _r->fieldPts.end() &&
                     it->first.first == o &&
                     it->first.second.rfind(prefix, 0) == 0;
                     ++it) {
                    keys.push_back(it->first.second);
                }
            }
            for (const auto &key : keys) {
                _fieldReaders[{o, key}].insert(n);
                auto it = _r->fieldPts.find({o, key});
                if (it != _r->fieldPts.end())
                    changed |= addObjs(n, instr.dst, it->second);
            }
        }
        return changed;
      }
      case Opcode::ArrayPut: {
        ConstVal idx = _r->constOf(n, instr.srcs[1]);
        for (ObjId o : pts(instr.srcs[0])) {
            std::string key =
                _opts.indexSensitiveArrays && idx.isConst()
                    ? arrayElementKey(classOf(o), idx.value)
                    : arrayWildcardKey(classOf(o));
            addFieldObjs(o, key, pts(instr.srcs[2]));
        }
        return false;
      }
      case Opcode::Return:
        addReturn(n, pts(instr.srcs[0]));
        return false;
      case Opcode::Invoke:
        return processInvoke(n, m, idx);
    }
    return false;
}

bool
PointsToAnalysis::Engine::processInvoke(NodeId n, const Method *m,
                                        int idx)
{
    if (const EntryEventSite *ev = _plan.siteAt(m, idx))
        return handleEventSite(n, m, idx, *ev);

    const Instruction &instr = m->instr(idx);
    ApiKind kind = _apis.classify(instr.method);
    if (kind != ApiKind::None)
        return handleIntrinsic(n, m, idx, kind);
    return normalCall(n, m, idx);
}

bool
PointsToAnalysis::Engine::bindArgs(NodeId caller,
                                   const Instruction &instr,
                                   const Method *target, NodeId callee,
                                   bool has_this)
{
    bool changed = false;
    size_t arg_base = has_this ? 1 : 0;
    if (has_this && !target->isStatic() && !instr.srcs.empty()) {
        changed |= addObjs(callee, target->thisReg(),
                           _r->pointsTo(caller, instr.srcs[0]));
    }
    for (int p = 0; p < target->numParams(); ++p) {
        size_t src_idx = arg_base + static_cast<size_t>(p);
        if (src_idx >= instr.srcs.size())
            break;
        int src_reg = instr.srcs[src_idx];
        changed |= addObjs(callee, target->paramReg(p),
                           _r->pointsTo(caller, src_reg));
        changed |= mergeConst(callee, target->paramReg(p),
                              _r->constOf(caller, src_reg));
    }
    return changed;
}

bool
PointsToAnalysis::Engine::handleEventSite(NodeId n, const Method *m,
                                          int idx,
                                          const EntryEventSite &ev)
{
    const Instruction &instr = m->instr(idx);
    SiteId site = _r->sites.intern(m, idx);

    int act = spawnAction(ev.kind, _r->rootAction, site, ev.targetClass,
                          ev.callbackName);
    {
        Action &a = _r->actions.get(act);
        a.affinity = ThreadAffinity::MainLooper;
        a.widgetId = ev.widgetId;
        a.looperObj = _r->mainLooperObj;
    }

    // Copy: spawnEntry interns nodes, which may reallocate regPts.
    const std::set<ObjId> receivers = _r->pointsTo(n, instr.srcs[0]);
    for (ObjId o : receivers) {
        const Method *target = _r->cha.resolveVirtual(
            classOf(o), instr.method.methodName);
        if (!target)
            continue;
        // Even a bodyless (framework default) callback is a real action
        // node in the SHBG; only spawn a CG node when there is a body.
        if (!target->hasBody()) {
            _r->cg.addSpawn({n, site, act});
            continue;
        }
        NodeId n2 = spawnEntry(act, target, o, n, site);
        bindArgs(n, instr, target, n2, true);
    }
    return false;
}

bool
PointsToAnalysis::Engine::handleIntrinsic(NodeId n, const Method *m,
                                          int idx, ApiKind kind)
{
    const Instruction &instr = m->instr(idx);
    SiteId site = _r->sites.intern(m, idx);
    // Copies throughout: intrinsics intern nodes/actions while iterating,
    // which may reallocate the backing vectors.
    auto pts = [&](size_t i) -> std::set<ObjId> {
        if (i >= instr.srcs.size())
            return {};
        return _r->pointsTo(n, instr.srcs[i]);
    };
    const std::set<int> creators = _r->cg.actionsOf(n);

    auto looper_of_handler = [&](ObjId h) {
        auto it = _r->handlerLooper.find(h);
        return it == _r->handlerLooper.end() ? _r->mainLooperObj
                                             : it->second;
    };
    auto set_looper = [&](Action &a, ObjId looper) {
        a.looperObj = looper;
        a.affinity = looper == _r->mainLooperObj
                         ? ThreadAffinity::MainLooper
                         : ThreadAffinity::CustomLooper;
    };
    auto spawn_runnable = [&](ActionKind akind, ObjId runnable,
                              ObjId looper, ThreadAffinity affinity) {
        const Method *run =
            _r->cha.resolveVirtual(classOf(runnable), "run");
        if (!run || !run->hasBody())
            return;
        for (int creator : creators) {
            int act = spawnAction(akind, creator, site,
                                  classOf(runnable), "run");
            Action &a = _r->actions.get(act);
            a.affinity = affinity;
            if (affinity != ThreadAffinity::Background)
                set_looper(a, looper);
            spawnEntry(act, run, runnable, n, site);
        }
    };

    switch (kind) {
      case ApiKind::HandlerPost: {
        for (ObjId h : pts(0)) {
            ObjId looper = looper_of_handler(h);
            for (ObjId r : pts(1)) {
                spawn_runnable(ActionKind::PostedRunnable, r, looper,
                               looper == _r->mainLooperObj
                                   ? ThreadAffinity::MainLooper
                                   : ThreadAffinity::CustomLooper);
            }
        }
        return false;
      }
      case ApiKind::ViewPost:
      case ApiKind::RunOnUiThread: {
        for (ObjId r : pts(1)) {
            spawn_runnable(ActionKind::PostedRunnable, r,
                           _r->mainLooperObj,
                           ThreadAffinity::MainLooper);
        }
        return false;
      }
      case ApiKind::HandlerSendMessage: {
        for (ObjId h : pts(0)) {
            const Method *target =
                _r->cha.resolveVirtual(classOf(h), "handleMessage");
            if (!target || !target->hasBody())
                continue;
            ObjId looper = looper_of_handler(h);
            // Constant message "what" (on-demand constant propagation,
            // paper Section 5).
            ConstVal what;
            bool empty_message =
                instr.method.methodName == "sendEmptyMessage";
            if (empty_message) {
                what = _r->constOf(n, instr.srcs.size() > 1
                                          ? instr.srcs[1]
                                          : -1);
            } else {
                for (ObjId msg : pts(1)) {
                    ConstVal w = fieldConstOf(
                        msg, "android.os.Message.what");
                    if (what.state == ConstVal::State::Bottom)
                        what = w;
                    else if (!(what.isConst() && w.isConst() &&
                               what.value == w.value))
                        what.state = ConstVal::State::Top;
                }
            }
            for (int creator : creators) {
                int act = spawnAction(ActionKind::PostedMessage, creator,
                                      site, classOf(h), "handleMessage");
                Action &a = _r->actions.get(act);
                set_looper(a, looper);
                if (what.isConst())
                    a.messageWhat = static_cast<int>(what.value);
                NodeId n2 = spawnEntry(act, target, h, n, site);
                if (target->numParams() >= 1) {
                    if (empty_message) {
                        ObjId msg = _r->objects.syntheticObject(
                            framework::names::message, site);
                        if (what.isConst()) {
                            mergeFieldConst(msg,
                                            "android.os.Message.what",
                                            what);
                        }
                        addObj(n2, target->paramReg(0), msg);
                    } else {
                        addObjs(n2, target->paramReg(0), pts(1));
                    }
                }
            }
        }
        return false;
      }
      case ApiKind::AsyncTaskExecute: {
        for (ObjId t : pts(0)) {
            const std::string &cls = classOf(t);
            struct Phase {
                const char *cb;
                ActionKind kind;
                ThreadAffinity affinity;
            };
            static const Phase phases[] = {
                {"onPreExecute", ActionKind::AsyncPre,
                 ThreadAffinity::MainLooper},
                {"doInBackground", ActionKind::AsyncBackground,
                 ThreadAffinity::Background},
                {"onPostExecute", ActionKind::AsyncPost,
                 ThreadAffinity::MainLooper},
            };
            NodeId bg_node = -1;
            for (const auto &phase : phases) {
                const Method *target =
                    _r->cha.resolveVirtual(cls, phase.cb);
                if (!target || !target->hasBody())
                    continue;
                for (int creator : creators) {
                    int act = spawnAction(phase.kind, creator, site, cls,
                                          phase.cb);
                    Action &a = _r->actions.get(act);
                    a.affinity = phase.affinity;
                    if (phase.affinity == ThreadAffinity::MainLooper)
                        a.looperObj = _r->mainLooperObj;
                    NodeId n2 = spawnEntry(act, target, t, n, site);
                    if (phase.kind == ActionKind::AsyncBackground) {
                        bg_node = n2;
                    } else if (phase.kind == ActionKind::AsyncPost &&
                               bg_node >= 0 &&
                               target->numParams() >= 1) {
                        // doInBackground's result flows into
                        // onPostExecute's parameter.
                        addReturnFlow(bg_node, n2, target->paramReg(0));
                    }
                }
            }
        }
        return false;
      }
      case ApiKind::ThreadStart: {
        for (ObjId t : pts(0)) {
            const Method *run = _r->cha.resolveVirtual(classOf(t), "run");
            if (run && run->hasBody()) {
                spawn_runnable(ActionKind::ThreadRun, t, -1,
                               ThreadAffinity::Background);
                continue;
            }
            // Plain java.lang.Thread wrapping a Runnable.
            std::string key = "java.lang.Thread.$target";
            _fieldReaders[{t, key}].insert(n);
            auto it = _r->fieldPts.find({t, key});
            if (it == _r->fieldPts.end())
                continue;
            for (ObjId r : it->second) {
                spawn_runnable(ActionKind::ThreadRun, r, -1,
                               ThreadAffinity::Background);
            }
        }
        return false;
      }
      case ApiKind::ExecutorExecute: {
        for (ObjId r : pts(1)) {
            spawn_runnable(ActionKind::ExecutorRun, r, -1,
                           ThreadAffinity::Background);
        }
        return false;
      }
      case ApiKind::ThreadInit: {
        if (instr.srcs.size() >= 2) {
            for (ObjId t : pts(0)) {
                addFieldObjs(t, "java.lang.Thread.$target", pts(1));
            }
        }
        return false;
      }
      case ApiKind::HandlerInit: {
        for (ObjId h : pts(0)) {
            ObjId looper = _r->mainLooperObj;
            if (instr.srcs.size() >= 2 && !pts(1).empty())
                looper = *pts(1).begin();
            _r->handlerLooper[h] = looper;
        }
        return false;
      }
      case ApiKind::RegisterReceiver: {
        for (ObjId r : pts(1)) {
            const Method *target =
                _r->cha.resolveVirtual(classOf(r), "onReceive");
            if (!target || !target->hasBody())
                continue;
            for (int creator : creators) {
                int act = spawnAction(ActionKind::Receive, creator, site,
                                      classOf(r), "onReceive");
                Action &a = _r->actions.get(act);
                a.affinity = ThreadAffinity::MainLooper;
                a.looperObj = _r->mainLooperObj;
                NodeId n2 = spawnEntry(act, target, r, n, site);
                if (target->numParams() >= 1)
                    addObjs(n2, target->paramReg(0), pts(0));
                if (target->numParams() >= 2) {
                    addObj(n2, target->paramReg(1),
                           _r->objects.singleton(
                               framework::names::intent,
                               kSystemIntent));
                }
            }
        }
        return false;
      }
      case ApiKind::BindService: {
        for (ObjId c : pts(2)) {
            const Method *target = _r->cha.resolveVirtual(
                classOf(c), "onServiceConnected");
            if (!target || !target->hasBody())
                continue;
            for (int creator : creators) {
                int act = spawnAction(ActionKind::ServiceConnected,
                                      creator, site, classOf(c),
                                      "onServiceConnected");
                Action &a = _r->actions.get(act);
                a.affinity = ThreadAffinity::MainLooper;
                a.looperObj = _r->mainLooperObj;
                NodeId n2 = spawnEntry(act, target, c, n, site);
                if (target->numParams() >= 1) {
                    addObj(n2, target->paramReg(0),
                           _r->objects.syntheticObject(
                               "android.os.IBinder", site));
                }
            }
        }
        return false;
      }
      case ApiKind::StartService: {
        for (const auto &svc : _app.manifest().services) {
            for (const char *cb : {"onCreate", "onStartCommand"}) {
                const Method *target =
                    _r->cha.resolveVirtual(svc.className, cb);
                if (!target || !target->hasBody())
                    continue;
                for (int creator : creators) {
                    int act = spawnAction(ActionKind::ServiceCreate,
                                          creator, site, svc.className,
                                          cb);
                    Action &a = _r->actions.get(act);
                    a.affinity = ThreadAffinity::MainLooper;
                    a.looperObj = _r->mainLooperObj;
                    ObjId self = _r->objects.singleton(svc.className,
                                                       kSystemIntent);
                    NodeId n2 = spawnEntry(act, target, self, n, site);
                    if (target->numParams() >= 1) {
                        addObj(n2, target->paramReg(0),
                               _r->objects.syntheticObject(
                                   framework::names::intent, site));
                    }
                }
            }
        }
        return false;
      }
      case ApiKind::FindViewById: {
        ConstVal id = instr.srcs.size() > 1
                          ? _r->constOf(n, instr.srcs[1])
                          : ConstVal{};
        if (id.isConst() && _opts.ctx.inflatedViewContext) {
            // Look the id up across the app's layouts.
            const framework::Widget *widget = nullptr;
            for (const auto &[activity, layout] : _app.layouts()) {
                widget = layout.byId(static_cast<int>(id.value));
                if (widget)
                    break;
            }
            std::string klass =
                widget ? widget->widgetClass : framework::names::view;
            return addObj(n, instr.dst,
                          _r->objects.inflatedView(
                              klass, static_cast<int>(id.value)));
        }
        return addObj(n, instr.dst,
                      _r->objects.syntheticObject(
                          framework::names::view, site));
      }
      case ApiKind::SetListener: {
        std::string cb = framework::KnownApis::listenerCallback(
            instr.method.methodName);
        int widget_id = -1;
        for (ObjId v : pts(0)) {
            const HeapObject &vo = _r->objects.get(v);
            if (vo.kind == ObjKind::InflatedView) {
                widget_id = vo.viewId;
                break;
            }
        }
        for (ObjId l : pts(1)) {
            const Method *target =
                _r->cha.resolveVirtual(classOf(l), cb);
            if (!target || !target->hasBody())
                continue;
            for (int creator : creators) {
                int act = spawnAction(ActionKind::Gui, creator, site,
                                      classOf(l), cb);
                Action &a = _r->actions.get(act);
                a.affinity = ThreadAffinity::MainLooper;
                a.looperObj = _r->mainLooperObj;
                if (a.widgetId < 0)
                    a.widgetId = widget_id;
                NodeId n2 = spawnEntry(act, target, l, n, site);
                if (target->numParams() >= 1)
                    addObjs(n2, target->paramReg(0), pts(0));
            }
        }
        return false;
      }
      case ApiKind::MessageObtain: {
        if (instr.dst < 0)
            return false;
        return addObj(n, instr.dst,
                      _r->objects.syntheticObject(
                          framework::names::message, site));
      }
      case ApiKind::HandlerThreadGetLooper: {
        // One abstract looper per HandlerThread object; handlers bound
        // to it deliver to that thread's queue (CustomLooper affinity).
        if (instr.dst < 0)
            return false;
        bool changed = false;
        for (ObjId t : pts(0)) {
            changed |= addObj(
                n, instr.dst,
                _r->objects.singleton(framework::names::looper,
                                      kHandlerThreadLooperBase + t));
        }
        return changed;
      }
      case ApiKind::LooperMain:
      case ApiKind::LooperMy: {
        // myLooper() is approximated by the main looper.
        if (instr.dst < 0)
            return false;
        return addObj(n, instr.dst, _r->mainLooperObj);
      }
      case ApiKind::HandlerRemove:
      case ApiKind::SetContentView:
      case ApiKind::UnregisterReceiver:
      case ApiKind::SendBroadcast:
      case ApiKind::StartActivity:
      case ApiKind::ObjectInit:
      case ApiKind::None:
        return false;
    }
    return false;
}

bool
PointsToAnalysis::Engine::normalCall(NodeId n, const Method *m, int idx)
{
    const Instruction &instr = m->instr(idx);
    SiteId site = _r->sites.intern(m, idx);
    CtxId caller_ctx = _r->cg.node(n).ctx;
    int caller_action =
        asMode() ? _r->contexts.get(caller_ctx).actionId : -1;
    bool changed = false;

    auto connect = [&](const Method *target, CtxId cc, bool has_this) {
        if (!target->hasBody())
            return;
        NodeId n2 = internNode(target, cc);
        _r->cg.addEdge(n, site, n2);
        for (int a : _r->cg.actionsOf(n))
            addActionToNode(n2, a);
        bindArgs(n, instr, target, n2, has_this);
        if (instr.dst >= 0 && target->returnType().isReference())
            addReturnFlow(n2, n, instr.dst);
    };

    switch (instr.invokeKind) {
      case InvokeKind::Static: {
        const Method *target = _r->cha.resolveStatic(
            instr.method.className, instr.method.methodName);
        if (!target)
            return false;
        CtxId cc = selectCtx(false, caller_ctx, -1, site, caller_action);
        connect(target, cc, false);
        return changed;
      }
      case InvokeKind::Special: {
        const Method *target = _r->cha.resolveVirtual(
            instr.method.className, instr.method.methodName);
        if (!target)
            return false;
        CtxId cc = selectCtx(false, caller_ctx, -1, site, caller_action);
        connect(target, cc, true);
        return changed;
      }
      case InvokeKind::Virtual:
      case InvokeKind::Interface: {
        if (instr.srcs.empty())
            return false;
        // Copy: interning callee nodes may reallocate regPts.
        const std::set<ObjId> receivers =
            _r->pointsTo(n, instr.srcs[0]);
        for (ObjId o : receivers) {
            const Method *target = _r->cha.resolveVirtual(
                classOf(o), instr.method.methodName);
            if (!target || !target->hasBody())
                continue;
            CtxId cc =
                selectCtx(true, caller_ctx, o, site, caller_action);
            NodeId n2 = internNode(target, cc);
            _r->cg.addEdge(n, site, n2);
            for (int a : _r->cg.actionsOf(n))
                addActionToNode(n2, a);
            // Precise per-receiver this-binding.
            if (!target->isStatic())
                addObj(n2, target->thisReg(), o);
            bool arg_changed = false;
            for (int p = 0; p < target->numParams(); ++p) {
                size_t src_idx = 1 + static_cast<size_t>(p);
                if (src_idx >= instr.srcs.size())
                    break;
                arg_changed |= addObjs(
                    n2, target->paramReg(p),
                    _r->pointsTo(n, instr.srcs[src_idx]));
                arg_changed |= mergeConst(
                    n2, target->paramReg(p),
                    _r->constOf(n, instr.srcs[src_idx]));
            }
            (void)arg_changed;
            if (instr.dst >= 0 && target->returnType().isReference())
                addReturnFlow(n2, n, instr.dst);
        }
        return changed;
      }
    }
    return changed;
}

PointsToAnalysis::PointsToAnalysis(const framework::App &app,
                                   const EntryPlan &plan,
                                   PointsToOptions options)
    : _engine(std::make_unique<Engine>(app, plan, options))
{
}

PointsToAnalysis::~PointsToAnalysis() = default;

std::unique_ptr<PointsToResult>
PointsToAnalysis::run()
{
    return _engine->run();
}

} // namespace sierra::analysis
