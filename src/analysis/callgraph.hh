/**
 * @file
 * Context-sensitive call graph.
 */

#ifndef SIERRA_ANALYSIS_CALLGRAPH_HH
#define SIERRA_ANALYSIS_CALLGRAPH_HH

#include <unordered_map>
#include <vector>

#include "context.hh"
#include "sites.hh"
#include "util/arena.hh"
#include "util/bitset.hh"

namespace sierra::analysis {

/** Call-graph node id. */
using NodeId = int;

/** One call-graph node: a method under a context. */
struct CGNodeData {
    const air::Method *method{nullptr};
    CtxId ctx{kEmptyCtx};
};

/** One resolved call edge. */
struct CGEdge {
    SiteId site{kNoSite}; //!< the invoke instruction
    NodeId callee{-1};
};

/** An action-spawn edge: a post/execute/start site creating an action. */
struct SpawnEdge {
    NodeId creator{-1};
    SiteId site{kNoSite};
    int actionId{-1};
};

/**
 * The on-the-fly call graph filled in by the pointer analysis.
 *
 * Also records, per node, the set of actions whose handling can execute
 * the node (used to attribute memory accesses to actions).
 */
class CallGraph
{
  public:
    /** Attach the arena that owns edge arrays and action-set spill
     *  storage (PointsToResult wires its own arena in; standalone
     *  call graphs in tests fall back to the heap). */
    void setArena(util::Arena *arena) { _arena = arena; }

    /** Intern a (method, context) node. */
    NodeId internNode(const air::Method *method, CtxId ctx);

    /** Look up an existing node; -1 if absent. */
    NodeId findNode(const air::Method *method, CtxId ctx) const;

    const CGNodeData &node(NodeId id) const { return _nodes[id]; }
    int numNodes() const { return static_cast<int>(_nodes.size()); }

    /** Add a call edge; returns true if it was new. */
    bool addEdge(NodeId caller, SiteId site, NodeId callee);

    const util::ArenaVector<CGEdge> &edgesOf(NodeId id) const
    {
        return _edges[id];
    }
    const std::vector<NodeId> &callersOf(NodeId id) const
    {
        return _reverse[id];
    }

    /** Record an action-spawn edge (idempotent). */
    void
    addSpawn(SpawnEdge e)
    {
        for (const auto &s : _spawns) {
            if (s.creator == e.creator && s.site == e.site &&
                s.actionId == e.actionId) {
                return;
            }
        }
        _spawns.push_back(e);
    }
    const std::vector<SpawnEdge> &spawns() const { return _spawns; }

    /** Actions that can execute this node (dense bitset; ascending
     *  iteration like the std::set it replaced). */
    const util::ObjBitset &actionsOf(NodeId id) const
    {
        return _actionsOf[id];
    }
    /** Add an action to a node's action set; true if it was new. */
    bool addAction(NodeId id, int action)
    {
        return _actionsOf[id].insert(action);
    }

    /** All nodes of a given method, in creation order. */
    const std::vector<NodeId> &nodesOfMethod(const air::Method *m) const;

  private:
    struct KeyHash {
        size_t
        operator()(const std::pair<const air::Method *, CtxId> &p) const
        {
            return std::hash<const void *>()(p.first) * 31 +
                   std::hash<int>()(p.second);
        }
    };

    util::Arena *_arena{nullptr};
    std::vector<CGNodeData> _nodes;
    std::vector<util::ArenaVector<CGEdge>> _edges;
    std::vector<std::vector<NodeId>> _reverse;
    std::vector<util::ObjBitset> _actionsOf;
    std::vector<SpawnEdge> _spawns;
    std::unordered_map<std::pair<const air::Method *, CtxId>, NodeId,
                       KeyHash>
        _index;
    std::unordered_map<const air::Method *, std::vector<NodeId>>
        _byMethod;
    static const std::vector<NodeId> _emptyNodes;
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_CALLGRAPH_HH
