/**
 * @file
 * Interned program-point identities (sites).
 *
 * A site is a (method, instruction index) pair: allocation sites, call
 * sites and access sites all share this identity space, which lets
 * contexts mix k-obj and k-cfa elements uniformly.
 */

#ifndef SIERRA_ANALYSIS_SITES_HH
#define SIERRA_ANALYSIS_SITES_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "air/method.hh"

namespace sierra::analysis {

/** Interned site id; 0 is reserved for "no site". */
using SiteId = int;
inline constexpr SiteId kNoSite = 0;

/** Bidirectional (method, instr) <-> SiteId mapping. */
class SiteTable
{
  public:
    SiteTable() { _sites.push_back({nullptr, -1}); } // kNoSite

    SiteId
    intern(const air::Method *method, int instr_idx)
    {
        auto key = std::make_pair(method, instr_idx);
        auto it = _index.find(key);
        if (it != _index.end())
            return it->second;
        SiteId id = static_cast<SiteId>(_sites.size());
        _sites.push_back({method, instr_idx});
        _index.emplace(key, id);
        return id;
    }

    /** Look up an existing site without creating it; kNoSite if absent. */
    SiteId
    find(const air::Method *method, int instr_idx) const
    {
        auto it = _index.find(std::make_pair(method, instr_idx));
        return it == _index.end() ? kNoSite : it->second;
    }

    const air::Method *methodOf(SiteId id) const
    {
        return _sites[id].first;
    }
    int instrOf(SiteId id) const { return _sites[id].second; }

    std::string
    toString(SiteId id) const
    {
        if (id == kNoSite)
            return "<none>";
        return _sites[id].first->qualifiedName() + "@" +
               std::to_string(_sites[id].second);
    }

    size_t size() const { return _sites.size(); }

  private:
    struct PairHash {
        size_t
        operator()(const std::pair<const air::Method *, int> &p) const
        {
            return std::hash<const void *>()(p.first) * 31 +
                   std::hash<int>()(p.second);
        }
    };

    std::vector<std::pair<const air::Method *, int>> _sites;
    std::unordered_map<std::pair<const air::Method *, int>, SiteId,
                       PairHash>
        _index;
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_SITES_HH
