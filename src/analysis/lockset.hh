/**
 * @file
 * Must-held lock sets per instruction (lock-set race refutation).
 *
 * A forward dataflow client of the generic framework (dataflow.hh)
 * computes, for every call-graph node and instruction, the set of
 * abstract lock objects that are held on *every* path reaching the
 * instruction. Lock objects are resolved through the points-to result:
 * `monitor-enter r` acquires the single abstract object r must-aliases
 * (a points-to set of size one); an ambiguous enter (|pts| != 1)
 * acquires nothing, because the held lock cannot be named — the
 * analysis under-approximates held locks, which is the sound direction
 * for refutation. Monitor reentrancy is tracked with a per-lock depth,
 * clamped at kDepthCap so enters inside loops converge.
 *
 * Lock sets are interprocedural in the entry state: the locks held at
 * a node's entry are the intersection, over every call edge reaching
 * the node, of the locks held at the call site (Java monitors are
 * block-scoped, so a callee can never release a caller's lock — the
 * verifier's monitor-balance check enforces the AIR analogue). Action
 * entry nodes and the harness root are invoked by the framework with
 * no app locks held, so their entry set is empty.
 */

#ifndef SIERRA_ANALYSIS_LOCKSET_HH
#define SIERRA_ANALYSIS_LOCKSET_HH

#include <map>
#include <set>
#include <vector>

#include "points_to.hh"

namespace sierra::analysis {

/** One must-lock state: lock object -> acquisition depth (>= 1). */
using LockState = std::map<ObjId, int>;

/** Must-held lock sets for every node of one points-to result. */
class LockSetAnalysis
{
  public:
    /** Reentrancy depths are clamped here so loops converge. */
    static constexpr int kDepthCap = 8;

    explicit LockSetAnalysis(const PointsToResult &pts);

    /**
     * Lock objects held on every path when instruction `instr_idx` of
     * `node` starts executing. Empty for nodes the interprocedural
     * fixpoint never reached (never refutes anything).
     */
    std::set<ObjId> locksHeldAt(NodeId node, int instr_idx) const;

    /** Full state (with depths) at an instruction, for tests. */
    LockState stateAt(NodeId node, int instr_idx) const;

    /** Locks held at a node's entry (the interprocedural component). */
    const LockState &entryLocks(NodeId node) const;

    /** Number of nodes whose bodies contain monitor instructions. */
    int numMonitoredNodes() const { return _monitoredNodes; }

  private:
    /** Per node: per instruction, the must-lock state at its start.
     *  Nodes without monitor instructions and empty entry locks are
     *  left empty (their state is empty everywhere). */
    std::vector<std::vector<LockState>> _atInstr;
    std::vector<LockState> _entry;
    int _monitoredNodes{0};
    static const LockState _emptyState;
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_LOCKSET_HH
