#include "nullflow.hh"

#include "air/method.hh"
#include "cfg.hh"
#include "dominators.hh"

namespace sierra::analysis {

using air::CondKind;
using air::Instruction;
using air::InvokeKind;
using air::Opcode;
using framework::ApiKind;

const char *
nullVerdictName(NullVerdict v)
{
    switch (v) {
      case NullVerdict::Unknown: return "UNKNOWN";
      case NullVerdict::Guarded: return "GUARDED";
      case NullVerdict::Harmful: return "HARMFUL";
    }
    return "UNKNOWN";
}

bool
nullVerdictFromName(const std::string &name, NullVerdict &out)
{
    if (name == "UNKNOWN") {
        out = NullVerdict::Unknown;
        return true;
    }
    if (name == "GUARDED") {
        out = NullVerdict::Guarded;
        return true;
    }
    if (name == "HARMFUL") {
        out = NullVerdict::Harmful;
        return true;
    }
    return false;
}

int
nullVerdictRank(NullVerdict v)
{
    switch (v) {
      case NullVerdict::Guarded: return 0;
      case NullVerdict::Unknown: return 1;
      case NullVerdict::Harmful: return 2;
    }
    return 1;
}

namespace {

bool
isRefField(const PointsToResult &r, const air::FieldRef &field)
{
    const air::Field *f =
        r.cha.resolveField(field.className, field.fieldName);
    return f && f->type.isReference();
}

bool
sameField(const air::FieldRef &a, const air::FieldRef &b)
{
    return a.className == b.className && a.fieldName == b.fieldName;
}

bool
isFieldLoad(const Instruction &in)
{
    return in.op == Opcode::GetField || in.op == Opcode::GetStatic;
}

/** The register a (static) null-check API call tests; -1 if the call
 *  shape is not recognized. */
int
nullCheckedReg(const Instruction &in)
{
    if (!in.isInvoke() || in.invokeKind != InvokeKind::Static ||
        in.srcs.empty())
        return -1;
    return in.srcs[0];
}

} // namespace

/** Per-method CFG + dominator tree + jump-target mask, built once on
 *  the first guard query against the method. */
struct NullFlowAnalysis::DomInfo {
    Cfg cfg;
    DominatorTree dom;
    std::vector<char> isTarget;

    explicit DomInfo(const air::Method &m) : cfg(m), dom(cfg)
    {
        isTarget.assign(static_cast<size_t>(m.numInstrs()), 0);
        for (const Instruction &in : m.instrs()) {
            if (in.isBranch() && in.target >= 0 &&
                in.target < m.numInstrs())
                isTarget[static_cast<size_t>(in.target)] = 1;
        }
    }
};

NullFlowAnalysis::NullFlowAnalysis(
    const PointsToResult &result, const InterConstants *inter,
    const framework::KnownApis &apis,
    std::function<bool(int, int)> happensBefore)
    : _r(result), _inter(inter), _apis(apis),
      _happensBefore(std::move(happensBefore))
{
}

NullFlowAnalysis::~NullFlowAnalysis() = default;

bool
NullFlowAnalysis::storesProvenNull(NodeId node, const air::Method *m,
                                   int instr, int value_reg) const
{
    // Flow-sensitive interprocedural facts when the IFDS stage ran
    // (covers setter parameters proven null at every call site); the
    // flow-insensitive per-node constants otherwise (covers direct
    // constNull stores).
    if (_inter) {
        ConstVal v = _inter->before(m, instr, value_reg);
        return v.isConst() && v.value == 0;
    }
    ConstVal v = _r.constOf(node, value_reg);
    return v.isConst() && v.value == 0;
}

void
NullFlowAnalysis::buildStoreIndex()
{
    if (_indexBuilt)
        return;
    _indexBuilt = true;
    for (NodeId n = 0; n < _r.cg.numNodes(); ++n) {
        const air::Method *m = _r.cg.node(n).method;
        if (!m || !m->hasBody())
            continue;
        for (int i = 0; i < m->numInstrs(); ++i) {
            const Instruction &instr = m->instr(i);
            int value_reg = -1;
            if (instr.op == Opcode::PutField)
                value_reg = instr.srcs[1];
            else if (instr.op == Opcode::PutStatic)
                value_reg = instr.srcs[0];
            else
                continue;
            if (!isRefField(_r, instr.field))
                continue;
            StoreSite site;
            site.method = m;
            site.instr = i;
            site.node = n;
            site.isNull = storesProvenNull(n, m, i, value_reg);
            ++_stats.storesIndexed;
            if (site.isNull)
                ++_stats.nullStores;
            std::vector<std::string> keys;
            if (instr.op == Opcode::PutStatic) {
                keys.push_back(_r.staticKey(instr.field).str());
            } else {
                for (ObjId o : _r.pointsTo(n, instr.srcs[0]))
                    keys.push_back(_r.fieldKey(o, instr.field).str());
            }
            for (const std::string &key : keys)
                _stores[key].push_back(site);
        }
    }
}

const NullFlowAnalysis::DomInfo *
NullFlowAnalysis::domInfoFor(const air::Method *m)
{
    auto it = _doms.find(m);
    if (it == _doms.end()) {
        it = _doms.emplace(m, std::make_unique<DomInfo>(*m)).first;
        ++_stats.domTrees;
    }
    return it->second.get();
}

int
NullFlowAnalysis::soleDefOf(const air::Method &m, int before_instr,
                            int reg, const std::vector<char> &is_target)
{
    // Backward walk through moves, aborting at any control-flow join,
    // branch, or terminator: past those the register may hold a value
    // from another path, and the def must hold on *every* execution.
    for (int i = before_instr - 1; i >= 0; --i) {
        if (is_target[static_cast<size_t>(i + 1)])
            return -1;
        const Instruction &in = m.instr(i);
        if (in.isBranch() || in.isTerminator())
            return -1;
        if (in.dst == reg) {
            if (in.op == Opcode::Move) {
                reg = in.srcs[0];
                continue;
            }
            return i;
        }
    }
    return -1;
}

bool
NullFlowAnalysis::isGuardLoad(const air::Method &m, int read_instr,
                              std::string *chain)
{
    // A load whose value flows only into a null test cannot itself
    // crash -- it IS the guard. Forward scan until the register is
    // redefined; the first null test ends the scan (later uses of the
    // register are dominated by that test), any other use disqualifies.
    const Instruction &read = m.instr(read_instr);
    const int reg = read.dst;
    if (reg < 0)
        return false;
    const int n = m.numInstrs();
    const DomInfo *info = domInfoFor(&m);
    for (int i = read_instr + 1; i < n; ++i) {
        // Another path joins in: the value may escape along it.
        if (info->isTarget[static_cast<size_t>(i)])
            return false;
        const Instruction &in = m.instr(i);
        bool uses = false;
        for (int s : in.srcs) {
            if (s == reg) {
                uses = true;
                break;
            }
        }
        if (uses) {
            const bool null_test =
                (in.op == Opcode::IfZ && in.srcs[0] == reg &&
                 (in.cond == CondKind::Eq || in.cond == CondKind::Ne)) ||
                (in.isInvoke() && nullCheckedReg(in) == reg &&
                 _apis.classify(in.method) == ApiKind::NullCheck);
            if (!null_test)
                return false;
            if (chain) {
                *chain = "guard " + m.qualifiedName() + ":" +
                         std::to_string(i) + " tests the loaded value";
            }
            return true;
        }
        if (in.dst == reg)
            return false; // overwritten before any use: stay Unknown
        if (in.isTerminator())
            return false;
    }
    return false;
}

bool
NullFlowAnalysis::dominatedByNullCheck(const air::Method &m,
                                       int read_instr,
                                       const air::FieldRef &field,
                                       std::string *chain)
{
    const DomInfo *info = domInfoFor(&m);

    // Does the register tested at `use_instr` carry a load of the
    // sink's field (directly or through a returning null-check API)?
    auto testsField = [&](int use_instr, int reg) {
        int d = soleDefOf(m, use_instr, reg, info->isTarget);
        if (d < 0)
            return false;
        const Instruction &def = m.instr(d);
        if (isFieldLoad(def) && sameField(def.field, field))
            return true;
        if (def.isInvoke() &&
            _apis.classify(def.method) == ApiKind::NullCheck) {
            int checked = nullCheckedReg(def);
            if (checked < 0)
                return false;
            int d2 = soleDefOf(m, d, checked, info->isTarget);
            if (d2 < 0)
                return false;
            const Instruction &load = m.instr(d2);
            return isFieldLoad(load) && sameField(load.field, field);
        }
        return false;
    };

    for (int g = 0; g < m.numInstrs(); ++g) {
        if (g == read_instr)
            continue;
        const Instruction &in = m.instr(g);
        bool is_guard = false;
        if (in.op == Opcode::IfZ &&
            (in.cond == CondKind::Eq || in.cond == CondKind::Ne)) {
            is_guard = testsField(g, in.srcs[0]);
        } else if (in.op == Opcode::If &&
                   (in.cond == CondKind::Eq ||
                    in.cond == CondKind::Ne)) {
            // field == null / field != null with an explicit constNull.
            for (int side = 0; side < 2 && !is_guard; ++side) {
                int fld_reg = in.srcs[static_cast<size_t>(side)];
                int nul_reg = in.srcs[static_cast<size_t>(1 - side)];
                int dn = soleDefOf(m, g, nul_reg, info->isTarget);
                if (dn < 0 || m.instr(dn).op != Opcode::ConstNull)
                    continue;
                is_guard = testsField(g, fld_reg);
            }
        } else if (in.isInvoke() &&
                   in.method.methodName == "requireNonNull" &&
                   _apis.classify(in.method) == ApiKind::NullCheck) {
            // Throwing check: reaching past it proves non-null.
            int checked = nullCheckedReg(in);
            if (checked >= 0) {
                int d = soleDefOf(m, g, checked, info->isTarget);
                if (d >= 0) {
                    const Instruction &load = m.instr(d);
                    is_guard = isFieldLoad(load) &&
                               sameField(load.field, field);
                }
            }
        }
        if (is_guard && info->dom.instrDominates(g, read_instr)) {
            if (chain) {
                *chain = "guard " + m.qualifiedName() + ":" +
                         std::to_string(g) + " dominates the read";
            }
            return true;
        }
    }
    return false;
}

NullFlowVerdict
NullFlowAnalysis::classifyRead(NodeId read_node, int read_instr,
                               NodeId write_node, int write_instr,
                               const std::string &key)
{
    ++_stats.queries;
    const air::Method *rm = _r.cg.node(read_node).method;
    const air::Method *wm = _r.cg.node(write_node).method;
    if (!rm || !rm->hasBody() || !wm)
        return {};
    if (read_instr < 0 || read_instr >= rm->numInstrs())
        return {};
    const Instruction &read = rm->instr(read_instr);
    if (!isFieldLoad(read) || !isRefField(_r, read.field))
        return {};
    ++_stats.sinksExamined;

    std::string chain;
    if (isGuardLoad(*rm, read_instr, &chain) ||
        dominatedByNullCheck(*rm, read_instr, read.field, &chain)) {
        ++_stats.guarded;
        return {NullVerdict::Guarded, std::move(chain)};
    }

    buildStoreIndex();
    const StoreSite *null_src = nullptr;
    bool racing_write_null = false;
    bool racing_write_seen = false;
    auto it = _stores.find(key);
    if (it != _stores.end()) {
        for (const StoreSite &s : it->second) {
            if (s.method == wm && s.instr == write_instr) {
                racing_write_seen = true;
                racing_write_null = racing_write_null || s.isNull;
                continue;
            }
            if (s.isNull) {
                if (!null_src)
                    null_src = &s;
                continue;
            }
            // Another non-null source: harmless to lose the race --
            // unless the SHBG proves that store can only run after
            // the sink read, in which case it cannot initialize it.
            bool always_after = true;
            const auto &read_actions = _r.cg.actionsOf(read_node);
            const auto &store_actions = _r.cg.actionsOf(s.node);
            if (read_actions.size() == 0 || store_actions.size() == 0)
                always_after = false;
            for (int ra : read_actions) {
                for (int sa : store_actions) {
                    if (!_happensBefore(ra, sa)) {
                        always_after = false;
                        break;
                    }
                }
                if (!always_after)
                    break;
            }
            if (!always_after)
                return {};
        }
    }
    // The racing write must be the non-null source; a racing null
    // store means the read observes null no matter who wins.
    if (!racing_write_seen || racing_write_null)
        return {};

    std::string src =
        null_src ? null_src->method->qualifiedName() + ":" +
                       std::to_string(null_src->instr)
                 : "<uninitialized>";
    chain = "null-source " + src + " -> " + key + " -> read " +
            rm->qualifiedName() + ":" + std::to_string(read_instr);
    ++_stats.harmful;
    return {NullVerdict::Harmful, std::move(chain)};
}

} // namespace sierra::analysis
