/**
 * @file
 * AIR lint: flow-sensitive diagnostics on top of the structural
 * verifier, built on the dataflow framework (analysis/dataflow.hh).
 *
 * Five checks:
 *  - use-before-def (Error): an instruction reads a register that is
 *    not definitely assigned on every path from method entry
 *    (parameters and `this` count as assigned);
 *  - unreachable-block (Warning): a basic block no path from entry
 *    reaches;
 *  - dead-store (Warning): a side-effect-free value-producing
 *    instruction (const/move/arith) whose destination is never read
 *    before being overwritten;
 *  - lock-held-at-post (Warning): a Handler.post/sendMessage/View.post
 *    call site that some path reaches with a monitor still held — the
 *    posted callback runs later on another queue, so the monitor
 *    protects nothing it does, and re-acquiring it there is a classic
 *    event-loop deadlock/ordering trap;
 *  - leaked-registration (Warning): a registerReceiver or
 *    setOnXxxListener in a lifecycle setup callback (onCreate, onStart,
 *    onResume) whose registered object no teardown callback (onPause,
 *    onStop, onDestroy) of the same class must-unregisters or
 *    must-clears. The registration is matched to its teardown through
 *    the instance field holding the receiver (or, for listeners, the
 *    long-lived field holding the view); listeners set on views the
 *    activity owns through findViewById die with the view tree and are
 *    not flagged. "Must" is literal: the unregister has to happen on
 *    every path through some teardown callback, computed by a forward
 *    intersection dataflow. This check needs the whole class (setup
 *    and teardown methods), so it runs under lintModule only.
 *
 * Diagnostics reuse air::VerifyIssue so verifier and lint output can be
 * merged, deduplicated, and printed uniformly.
 */

#ifndef SIERRA_ANALYSIS_LINT_HH
#define SIERRA_ANALYSIS_LINT_HH

#include <vector>

#include "air/verifier.hh"

namespace sierra::analysis {

struct LintOptions {
    bool useBeforeDef{true};
    bool unreachableBlocks{true};
    bool deadStores{true};
    bool lockHeldAtPost{true};
    bool leakedRegistration{true}; //!< module-scope; no-op in lintMethod
};

/** Lint one method body; no-op for bodyless methods. */
std::vector<air::VerifyIssue>
lintMethod(const air::Method &method, const LintOptions &opts = {});

/** Lint every method body in the module; issues are de-duplicated and
 *  ordered by module class/method declaration order. */
std::vector<air::VerifyIssue>
lintModule(const air::Module &module, const LintOptions &opts = {});

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_LINT_HH
