/**
 * @file
 * Canonical location keys for array elements.
 *
 * By default arrays are index-insensitive: every element maps to one
 * "$elems" summary location (the paper's model, and one of its stated
 * false-positive sources). With index-sensitive analysis enabled,
 * accesses with constant indices get per-element "$elem#i" locations;
 * unknown-index accesses keep the wildcard and may alias any element.
 */

#ifndef SIERRA_ANALYSIS_ARRAY_KEYS_HH
#define SIERRA_ANALYSIS_ARRAY_KEYS_HH

#include <cstdint>
#include <string>

namespace sierra::analysis {

/** Key of the summary location covering all elements of an array. */
inline std::string
arrayWildcardKey(const std::string &array_klass)
{
    return array_klass + ".$elems";
}

/** Key of one element under index-sensitive array analysis. */
inline std::string
arrayElementKey(const std::string &array_klass, int64_t index)
{
    return array_klass + ".$elem#" + std::to_string(index);
}

/** True if the key names an array location (element or wildcard). */
inline bool
isArrayKey(const std::string &key)
{
    return key.find(".$elem") != std::string::npos;
}

/** True if the key is an array wildcard (unknown-index) location. */
inline bool
isArrayWildcardKey(const std::string &key)
{
    return key.find(".$elems") != std::string::npos;
}

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_ARRAY_KEYS_HH
