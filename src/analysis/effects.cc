#include "effects.hh"

#include <vector>

namespace sierra::analysis {

using air::Instruction;
using air::InvokeKind;
using air::Method;
using air::Opcode;

namespace {

std::string
canonicalStaticKey(const ClassHierarchy &cha, const air::FieldRef &field)
{
    // Must match PointsToResult::staticKey so the race-stage prefilter
    // compares apples to apples.
    std::string decl =
        cha.declaringClassOfField(field.className, field.fieldName);
    if (decl.empty())
        decl = field.className;
    return decl + "." + field.fieldName;
}

/** CHA-resolve the possible bodies of one invoke. An empty result or
 *  any bodyless target means the call's effects are unknown. */
void
resolveTargets(const ClassHierarchy &cha, const Instruction &instr,
               std::vector<const Method *> &out, bool &unknown)
{
    out.clear();
    switch (instr.invokeKind) {
      case InvokeKind::Static: {
        const Method *t = cha.resolveStatic(instr.method.className,
                                            instr.method.methodName);
        if (t)
            out.push_back(t);
        break;
      }
      case InvokeKind::Special: {
        const Method *t = cha.resolveVirtual(instr.method.className,
                                             instr.method.methodName);
        if (t)
            out.push_back(t);
        break;
      }
      case InvokeKind::Virtual:
      case InvokeKind::Interface: {
        for (const air::Klass *k :
             cha.concreteSubtypes(instr.method.className)) {
            const Method *t =
                cha.resolveVirtual(k->name(), instr.method.methodName);
            if (t)
                out.push_back(t);
        }
        break;
      }
    }
    if (out.empty()) {
        unknown = true;
        return;
    }
    for (const Method *t : out) {
        if (!t->hasBody())
            unknown = true;
    }
}

/** Union `from` into `into`; true if anything was added. */
bool
unionInto(FieldEffects::Summary &into, const FieldEffects::Summary &from)
{
    bool changed = false;
    auto mergeSet = [&](FieldEffects::EffectSet &dst,
                        const FieldEffects::EffectSet &src) {
        changed |= dst.bits.unionWith(src.bits);
    };
    mergeSet(into.instanceWrites, from.instanceWrites);
    mergeSet(into.instanceReads, from.instanceReads);
    mergeSet(into.staticWrites, from.staticWrites);
    mergeSet(into.staticReads, from.staticReads);
    auto mergeFlag = [&](bool &dst, bool src) {
        if (src && !dst) {
            dst = true;
            changed = true;
        }
    };
    mergeFlag(into.writesArrays, from.writesArrays);
    mergeFlag(into.readsArrays, from.readsArrays);
    mergeFlag(into.callsUnknown, from.callsUnknown);
    return changed;
}

} // namespace

FieldEffects::FieldEffects(const air::Module &module,
                           const ClassHierarchy &cha)
{
    _unknown.callsUnknown = true;

    auto bind = [this](Summary &s) {
        s.instanceWrites.names = &_keys;
        s.instanceReads.names = &_keys;
        s.staticWrites.names = &_keys;
        s.staticReads.names = &_keys;
    };
    bind(_unknown);
    auto add = [this](EffectSet &set, std::string_view key) {
        set.bits.insert(static_cast<int>(_keys.intern(key)));
    };

    // Deterministic method order: module class order, declaration order.
    std::vector<const Method *> methods;
    for (const air::Klass *k : module.classes()) {
        for (const auto &m : k->methods()) {
            if (m->hasBody())
                methods.push_back(m.get());
        }
    }

    // Seed with each method's direct effects and record call edges.
    std::unordered_map<const Method *, std::vector<const Method *>>
        callees;
    std::vector<const Method *> targets;
    for (const Method *m : methods) {
        Summary &s = _summaries[m];
        bind(s);
        std::vector<const Method *> &edges = callees[m];
        for (int i = 0; i < m->numInstrs(); ++i) {
            const Instruction &instr = m->instr(i);
            switch (instr.op) {
              case Opcode::GetField:
                add(s.instanceReads, instr.field.fieldName);
                break;
              case Opcode::PutField:
                add(s.instanceWrites, instr.field.fieldName);
                break;
              case Opcode::GetStatic:
                add(s.staticReads, canonicalStaticKey(cha, instr.field));
                break;
              case Opcode::PutStatic:
                add(s.staticWrites,
                    canonicalStaticKey(cha, instr.field));
                break;
              case Opcode::ArrayGet:
                s.readsArrays = true;
                break;
              case Opcode::ArrayPut:
                s.writesArrays = true;
                break;
              case Opcode::Invoke:
                resolveTargets(cha, instr, targets, s.callsUnknown);
                for (const Method *t : targets) {
                    if (t->hasBody())
                        edges.push_back(t);
                }
                break;
              default:
                break;
            }
        }
    }

    // Fixpoint: propagate callee effects up until stable. Effect sets
    // only grow, so this terminates; round-robin over the fixed method
    // order keeps it deterministic.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Method *m : methods) {
            Summary &s = _summaries[m];
            for (const Method *t : callees[m])
                changed |= unionInto(s, _summaries[t]);
        }
    }
}

const FieldEffects::Summary &
FieldEffects::of(const Method *method) const
{
    auto it = _summaries.find(method);
    return it == _summaries.end() ? _unknown : it->second;
}

bool
FieldEffects::mayConflict(const Summary &a, const Summary &b)
{
    if (a.callsUnknown || b.callsUnknown)
        return true;
    if ((a.writesArrays && (b.readsArrays || b.writesArrays)) ||
        (b.writesArrays && (a.readsArrays || a.writesArrays)))
        return true;
    auto intersects = [](const EffectSet &x, const EffectSet &y) {
        return x.bits.intersects(y.bits);
    };
    return intersects(a.instanceWrites, b.instanceWrites) ||
           intersects(a.instanceWrites, b.instanceReads) ||
           intersects(b.instanceWrites, a.instanceReads) ||
           intersects(a.staticWrites, b.staticWrites) ||
           intersects(a.staticWrites, b.staticReads) ||
           intersects(b.staticWrites, a.staticReads);
}

int
FieldEffects::numPure() const
{
    int n = 0;
    for (const auto &[m, s] : _summaries) {
        (void)m;
        if (s.isPure())
            ++n;
    }
    return n;
}

} // namespace sierra::analysis
