/**
 * @file
 * Class hierarchy analysis: subtype tests and virtual dispatch.
 */

#ifndef SIERRA_ANALYSIS_CLASS_HIERARCHY_HH
#define SIERRA_ANALYSIS_CLASS_HIERARCHY_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "air/module.hh"

namespace sierra::analysis {

/**
 * Precomputed hierarchy facts over one module.
 *
 * Both class extension and interface implementation feed the subtype
 * relation; dispatch resolution walks the superclass chain only (AIR
 * interfaces carry no default methods).
 */
class ClassHierarchy
{
  public:
    explicit ClassHierarchy(const air::Module &module);

    const air::Module &module() const { return _module; }

    /** True if `sub` equals or transitively derives from/implements
     *  `super`. Unknown classes are only subtypes of themselves. */
    bool isSubtypeOf(const std::string &sub,
                     const std::string &super) const;

    /**
     * Resolve a virtual dispatch of `method_name` on a receiver of
     * dynamic class `class_name`: the first body up the super chain.
     * @return null when no declaration is found.
     */
    air::Method *resolveVirtual(const std::string &class_name,
                                const std::string &method_name) const;

    /** Resolve a static call: declaration on the class or a super. */
    air::Method *resolveStatic(const std::string &class_name,
                               const std::string &method_name) const;

    /** All concrete (non-interface) classes that are subtypes of the
     *  given class/interface, including itself when concrete. */
    const std::vector<const air::Klass *> &
    concreteSubtypes(const std::string &name) const;

    /** Find a field on the class or a super class; null if absent. */
    const air::Field *resolveField(const std::string &class_name,
                                   const std::string &field_name) const;

    /** The class (walking supers) that declares the given field; empty
     *  string when unresolved. Used to canonicalize field locations. */
    std::string declaringClassOfField(const std::string &class_name,
                                      const std::string &field_name) const;

  private:
    const air::Module &_module;
    //! class -> all transitive supertypes (classes + interfaces), incl. self
    std::unordered_map<std::string, std::vector<std::string>> _supers;
    //! type -> concrete subtypes
    mutable std::unordered_map<std::string,
                               std::vector<const air::Klass *>>
        _concreteSubtypes;
    static const std::vector<const air::Klass *> _empty;
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_CLASS_HIERARCHY_HH
