/**
 * @file
 * Content-hash-keyed artifact store: the persistence layer behind
 * `sierra serve` and incremental re-analysis (docs/CACHING.md).
 *
 * The store maps (kind, key) -> blob, where every key is derived from
 * *content hashes* of the inputs an artifact depends on, never from
 * timestamps or process state:
 *
 *  - `methodEnvHash(m)` keys one method body plus its resolution
 *    environment: the signature and every instruction's semantic
 *    fields, the owner's class-hierarchy slice (name, super chain,
 *    interfaces, fields), the known-API table version and the store
 *    schema version. Any edit that could change how the method
 *    analyzes changes the hash.
 *  - `shapeHash(app)` keys everything about an app *except* method
 *    bodies: manifest, layouts, class names/supers/fields and method
 *    signatures. Body edits keep the shape stable, so per-harness
 *    artifacts survive them when their footprint still validates;
 *    adding/removing a class, method, field or widget changes the
 *    shape and invalidates every harness key derived from it.
 *
 * Blobs are deterministic text, so two processes given the same module
 * produce byte-identical store contents (pinned by store_test). The
 * store holds everything in memory and optionally write-throughs to a
 * versioned on-disk directory (`dir/<kind>/<key>`); a schema or
 * known-API version mismatch discards the on-disk generation instead
 * of reading incompatible blobs (the invalidation rules are documented
 * in docs/CACHING.md).
 *
 * The `DepIndex` is the reverse-dependency index over the IFDS summary
 * graph: method-level caller<-callee edges recorded when summaries are
 * exported. `dirtyClosure(changed)` answers "which methods must be
 * re-solved when these bodies changed" -- the changed methods plus
 * every transitive caller whose summary may embed their facts.
 */

#ifndef SIERRA_ANALYSIS_STORE_HH
#define SIERRA_ANALYSIS_STORE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace sierra::air {
class Klass;
class Method;
} // namespace sierra::air

namespace sierra::framework {
class App;
} // namespace sierra::framework

namespace sierra::analysis::store {

/** Bumped whenever a blob format or hash recipe changes; a mismatch
 *  invalidates the whole on-disk store (see docs/CACHING.md). */
inline constexpr int kStoreSchemaVersion = 2;

/** FNV-1a over bytes; the deterministic hash every key derives from. */
uint64_t fnv64(std::string_view bytes,
               uint64_t seed = 1469598103934665603ULL);

/** Order-dependent combinator for composing hashes. */
uint64_t mixHash(uint64_t acc, uint64_t value);

/** Fixed-width lowercase hex of a hash (16 chars). */
std::string hashHex(uint64_t value);

/**
 * The class-hierarchy slice of one class: its name, transitive super
 * chain, interfaces and field declarations (names and types). Part of
 * every member method's resolution environment -- a field retyped or a
 * super re-parented re-keys every method of the class.
 */
uint64_t classSliceHash(const air::Klass &klass);

/** Content hash of one method body plus its resolution environment
 *  (see file comment). Stable across processes and jobs counts. */
uint64_t methodEnvHash(const air::Method &method);

/**
 * Env hashes for every analyzable method of the app: non-framework
 * classes (app code plus synthetic harness classes) with a body,
 * keyed by qualified name. Deterministic iteration order.
 */
std::map<std::string, uint64_t> hashMethods(const framework::App &app);

/** The app's structural hash: its printed bundle text with the
 *  instruction lines stripped (manifest + layouts + class shapes +
 *  method signatures, no bodies). */
uint64_t shapeHash(const framework::App &app);

/** Serialize a method-name -> env-hash index (one "name\thex" line per
 *  method, sorted). */
std::string serializeMethodIndex(
    const std::map<std::string, uint64_t> &index);

/** Parse a serialized method index; malformed lines are dropped. */
std::map<std::string, uint64_t>
parseMethodIndex(const std::string &blob);

/**
 * Reverse-dependency index over the IFDS summary graph at method
 * granularity. Edges point callee -> callers, so dirtying propagates
 * *up* the summary graph: a callee's facts are embedded in every
 * caller summary that consumed them.
 */
class DepIndex
{
  public:
    /** Record "caller's summary depends on callee's summary". */
    void addEdge(const std::string &caller, const std::string &callee);

    /** Union another index in (idempotent). */
    void merge(const DepIndex &other);

    /** Drop edges touching methods not in `keep` (removed bodies). */
    void prune(const std::set<std::string> &keep);

    /** The changed methods plus every transitive caller. */
    std::set<std::string>
    dirtyClosure(const std::set<std::string> &changed) const;

    /** Direct callers of one method (sorted). */
    std::vector<std::string> callersOf(const std::string &method) const;

    int64_t numEdges() const;

    std::string serialize() const;
    static DepIndex parse(const std::string &blob);

  private:
    //! callee -> set of callers
    std::map<std::string, std::set<std::string>> _callers;
};

/** One SCCP constant fact: register `reg` holds `value` just before
 *  instruction `instr` executes (on every invocation). */
struct SccpFact {
    int instr{0};
    int reg{0};
    int64_t value{0};
};

/** Run the intraprocedural SCCP solver over one method body and export
 *  its constant facts as a deterministic blob (one "instr reg value"
 *  line per fact, plus infeasible branch edges). */
std::string sccpFactsBlob(const air::Method &method);

/** Parse the constant rows of a `sccpFactsBlob` (edge rows skipped). */
std::vector<SccpFact> parseSccpFacts(const std::string &blob);

/** Structural digest of one method's CFG ("blocks N edges M hash H"),
 *  a cheap integrity check stored beside the per-method facts. */
std::string cfgDigest(const air::Method &method);

/** Store traffic counters (surfaced as `store.*` metrics). */
struct StoreStats {
    int64_t gets{0};         //!< lookups issued
    int64_t hits{0};         //!< lookups answered (memory or disk)
    int64_t puts{0};         //!< blobs written
    int64_t diskReads{0};    //!< blobs faulted in from disk
    int64_t bytesWritten{0};
};

/**
 * The (kind, key) -> blob store. Always memory-backed; with a
 * directory it also write-throughs every put and faults misses in
 * from disk, so a later process warm-starts from the same artifacts.
 */
class Store
{
  public:
    /** Memory-only store. */
    Store() = default;

    /** Disk-backed store rooted at `dir` (created if absent). If the
     *  on-disk VERSION disagrees with this binary's schema/known-API
     *  versions, the old generation is discarded. */
    explicit Store(const std::string &dir);

    Store(const Store &) = delete;
    Store &operator=(const Store &) = delete;

    /** The version stamp persisted to `dir/VERSION`. */
    static std::string versionStamp();

    bool onDisk() const { return !_dir.empty(); }
    const std::string &dir() const { return _dir; }

    std::optional<std::string> get(const std::string &kind,
                                   const std::string &key);
    void put(const std::string &kind, const std::string &key,
             const std::string &blob);

    /** All keys of one kind (sorted; includes on-disk-only keys). */
    std::vector<std::string> keys(const std::string &kind) const;

    const StoreStats &stats() const { return _stats; }

  private:
    std::string pathFor(const std::string &kind,
                        const std::string &key) const;

    std::string _dir; //!< empty = memory only
    std::map<std::string, std::string> _blobs;
    StoreStats _stats;
};

} // namespace sierra::analysis::store

#endif // SIERRA_ANALYSIS_STORE_HH
