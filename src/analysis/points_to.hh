/**
 * @file
 * Context-sensitive Andersen-style pointer analysis with on-the-fly call
 * graph construction and action discovery (paper Sections 3.1 and 3.3).
 *
 * This is the reproduction's substitute for WALA's pointer analysis plus
 * SIERRA's action-sensitive context-selector plugin. The engine:
 *  - builds the call graph on the fly from the harness entry,
 *  - reifies concurrency actions at framework API sites (Handler.post,
 *    AsyncTask.execute, Thread.start, registerReceiver, setOn*Listener,
 *    ...) and at harness event sites,
 *  - attributes call-graph nodes to the actions that can execute them,
 *  - resolves findViewById through the layout model using the
 *    InflatedViewContext abstraction,
 *  - tracks which looper each Handler is bound to (paper Section 4.4).
 *
 * Memory layout (see docs/INTERNALS.md "Memory layout & interning"):
 * points-to sets are dense bitsets (util::ObjBitset) spilling into the
 * result's arena; field/static keys are interned u32 FieldIds in the
 * result's deterministic string table; the worklist engine uses
 * version-signature delta propagation to skip re-executing instructions
 * whose inputs are unchanged since their last visit.
 */

#ifndef SIERRA_ANALYSIS_POINTS_TO_HH
#define SIERRA_ANALYSIS_POINTS_TO_HH

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "action.hh"
#include "callgraph.hh"
#include "class_hierarchy.hh"
#include "context.hh"
#include "entry_plan.hh"
#include "field_key.hh"
#include "framework/app.hh"
#include "heap.hh"
#include "sites.hh"
#include "util/arena.hh"
#include "util/bitset.hh"
#include "util/intern.hh"

namespace sierra::analysis {

/** Dense points-to / id set (ascending iteration, like std::set). */
using ObjSet = util::ObjBitset;

/** Options controlling one pointer-analysis run. */
struct PointsToOptions {
    ContextOptions ctx;
    int maxActions{4096}; //!< backstop against runaway action creation
    /**
     * Optional app-level hierarchy shared across harness tasks. The
     * hierarchy is a pure function of the module and immutable after
     * construction, so one instance can serve every per-harness solver
     * (the detector builds it once per analyze()). Shared ownership:
     * results outlive the detector call that spawned them, so each
     * result co-owns the hierarchy it references. Null: the result
     * builds and owns its own.
     */
    std::shared_ptr<const ClassHierarchy> sharedCha;
    /**
     * Give array accesses with constant indices per-element locations
     * instead of one "$elems" summary (the paper's future-work citation
     * of Dillig et al.; removes the index-insensitivity FP class).
     */
    bool indexSensitiveArrays{false};
};

/** Solver work counters, filled by every run (plain increments on the
 *  solving thread — no atomics, no overhead knob). The metric name
 *  catalog in docs/OBSERVABILITY.md maps these to registry names. */
struct PtaStats {
    int64_t worklistIterations{0}; //!< nodes popped off the worklist
    int64_t localPasses{0};        //!< per-node inner fixpoint passes
    int64_t instrVisits{0};        //!< instruction transfer applications
    //! instruction visits skipped because the version signature of the
    //! instruction's inputs was unchanged since its last execution
    //! (delta propagation; surfaced as `pta.delta_props`)
    int64_t deltaSkips{0};
};

/** A flow-insensitive constant lattice value for one register. */
struct ConstVal {
    enum class State { Bottom, Const, Top };
    State state{State::Bottom};
    int64_t value{0};

    bool isConst() const { return state == State::Const; }
};

/** Everything the downstream stages (HB, race, symbolic) consume. */
class PointsToResult
{
  public:
    /** Bump-pointer arena owning bitset spill storage and call-graph
     *  edge arrays. Declared first so it is destroyed last. */
    util::Arena arena;
    /** Deterministic field/static key table. Populated by the serial
     *  phases; the detector freezes it before parallel refutation
     *  (late interns from executor shards go to the thread-safe
     *  overflow table). */
    mutable util::StringInterner keys;

    SiteTable sites;
    ContextTable contexts;
    ObjectTable objects;
    CallGraph cg;
    ActionRegistry actions;

  private:
    //! The hierarchy this result reads: the caller's shared app-level
    //! instance, or one built here. Co-owned so the result stays valid
    //! after the detector locals that supplied it are gone. Declared
    //! before `cha` so the reference below can bind to it.
    std::shared_ptr<const ClassHierarchy> _chaPtr;

  public:
    //! Hierarchy facts (read-only view of `_chaPtr`).
    const ClassHierarchy &cha;
    PointsToOptions options;
    PtaStats stats;

    NodeId rootNode{-1};
    int rootAction{-1};

    //! per-node, per-register points-to sets
    std::vector<std::vector<ObjSet>> regPts;
    //! (object, interned "Class.field" id) -> points-to set
    std::map<std::pair<ObjId, FieldId>, ObjSet> fieldPts;
    //! interned "Class.field" id -> points-to set for statics
    std::map<FieldId, ObjSet> staticPts;
    //! per-node return-value points-to sets
    std::vector<ObjSet> returnPts;
    //! per-node, per-register constant lattice
    std::vector<std::vector<ConstVal>> regConst;
    //! Handler object -> Looper object it posts to
    std::unordered_map<ObjId, ObjId> handlerLooper;
    //! the main looper's abstract object
    ObjId mainLooperObj{-1};

    explicit PointsToResult(
        const air::Module &module,
        std::shared_ptr<const ClassHierarchy> shared_cha = nullptr)
        : _chaPtr(shared_cha
                      ? std::move(shared_cha)
                      : std::make_shared<ClassHierarchy>(module)),
          cha(*_chaPtr)
    {
        cg.setArena(&arena);
    }

    const ObjSet &pointsTo(NodeId node, int reg) const;
    ConstVal constOf(NodeId node, int reg) const;

    /** Canonical "DeclaringClass.field" key for an access, interned. */
    FieldKey fieldKey(ObjId obj, const air::FieldRef &field) const;
    FieldKey staticKey(const air::FieldRef &field) const;

    /** Intern an externally built key string (array element keys). */
    FieldKey
    internKey(std::string_view s, uint8_t flags = 0) const
    {
        return FieldKey::intern(keys, s, flags);
    }

    /** The string behind an interned key id. */
    const std::string &keyName(FieldId id) const { return keys.name(id); }

    /** Looper object an action's events are delivered to, or -1 for
     *  background-thread actions. */
    ObjId looperOfAction(int action_id) const;

    /** Count of actions excluding the synthetic harness root. */
    int numRealActions() const;

  private:
    static const ObjSet _emptySet;
};

/**
 * The analysis driver: run() produces a PointsToResult for one harness.
 */
class PointsToAnalysis
{
  public:
    PointsToAnalysis(const framework::App &app, const EntryPlan &plan,
                     PointsToOptions options = {});
    ~PointsToAnalysis();

    std::unique_ptr<PointsToResult> run();

  private:
    class Engine;
    std::unique_ptr<Engine> _engine;
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_POINTS_TO_HH
