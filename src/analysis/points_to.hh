/**
 * @file
 * Context-sensitive Andersen-style pointer analysis with on-the-fly call
 * graph construction and action discovery (paper Sections 3.1 and 3.3).
 *
 * This is the reproduction's substitute for WALA's pointer analysis plus
 * SIERRA's action-sensitive context-selector plugin. The engine:
 *  - builds the call graph on the fly from the harness entry,
 *  - reifies concurrency actions at framework API sites (Handler.post,
 *    AsyncTask.execute, Thread.start, registerReceiver, setOn*Listener,
 *    ...) and at harness event sites,
 *  - attributes call-graph nodes to the actions that can execute them,
 *  - resolves findViewById through the layout model using the
 *    InflatedViewContext abstraction,
 *  - tracks which looper each Handler is bound to (paper Section 4.4).
 */

#ifndef SIERRA_ANALYSIS_POINTS_TO_HH
#define SIERRA_ANALYSIS_POINTS_TO_HH

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "action.hh"
#include "callgraph.hh"
#include "class_hierarchy.hh"
#include "context.hh"
#include "entry_plan.hh"
#include "framework/app.hh"
#include "heap.hh"
#include "sites.hh"

namespace sierra::analysis {

/** Options controlling one pointer-analysis run. */
struct PointsToOptions {
    ContextOptions ctx;
    int maxActions{4096}; //!< backstop against runaway action creation
    /**
     * Give array accesses with constant indices per-element locations
     * instead of one "$elems" summary (the paper's future-work citation
     * of Dillig et al.; removes the index-insensitivity FP class).
     */
    bool indexSensitiveArrays{false};
};

/** Solver work counters, filled by every run (plain increments on the
 *  solving thread — no atomics, no overhead knob). The metric name
 *  catalog in docs/OBSERVABILITY.md maps these to registry names. */
struct PtaStats {
    int64_t worklistIterations{0}; //!< nodes popped off the worklist
    int64_t localPasses{0};        //!< per-node inner fixpoint passes
    int64_t instrVisits{0};        //!< instruction transfer applications
};

/** A flow-insensitive constant lattice value for one register. */
struct ConstVal {
    enum class State { Bottom, Const, Top };
    State state{State::Bottom};
    int64_t value{0};

    bool isConst() const { return state == State::Const; }
};

/** Everything the downstream stages (HB, race, symbolic) consume. */
class PointsToResult
{
  public:
    SiteTable sites;
    ContextTable contexts;
    ObjectTable objects;
    CallGraph cg;
    ActionRegistry actions;
    ClassHierarchy cha;
    PointsToOptions options;
    PtaStats stats;

    NodeId rootNode{-1};
    int rootAction{-1};

    //! per-node, per-register points-to sets
    std::vector<std::vector<std::set<ObjId>>> regPts;
    //! (object, canonical "Class.field") -> points-to set
    std::map<std::pair<ObjId, std::string>, std::set<ObjId>> fieldPts;
    //! canonical "Class.field" -> points-to set for statics
    std::map<std::string, std::set<ObjId>> staticPts;
    //! per-node return-value points-to sets
    std::vector<std::set<ObjId>> returnPts;
    //! per-node, per-register constant lattice
    std::vector<std::vector<ConstVal>> regConst;
    //! Handler object -> Looper object it posts to
    std::unordered_map<ObjId, ObjId> handlerLooper;
    //! the main looper's abstract object
    ObjId mainLooperObj{-1};

    explicit PointsToResult(const air::Module &module) : cha(module) {}

    const std::set<ObjId> &pointsTo(NodeId node, int reg) const;
    ConstVal constOf(NodeId node, int reg) const;

    /** Canonical "DeclaringClass.field" key for an access. */
    std::string fieldKey(ObjId obj, const air::FieldRef &field) const;
    std::string staticKey(const air::FieldRef &field) const;

    /** Looper object an action's events are delivered to, or -1 for
     *  background-thread actions. */
    ObjId looperOfAction(int action_id) const;

    /** Count of actions excluding the synthetic harness root. */
    int numRealActions() const;

  private:
    static const std::set<ObjId> _emptySet;
};

/**
 * The analysis driver: run() produces a PointsToResult for one harness.
 */
class PointsToAnalysis
{
  public:
    PointsToAnalysis(const framework::App &app, const EntryPlan &plan,
                     PointsToOptions options = {});
    ~PointsToAnalysis();

    std::unique_ptr<PointsToResult> run();

  private:
    class Engine;
    std::unique_ptr<Engine> _engine;
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_POINTS_TO_HH
