/**
 * @file
 * Method purity / field-effect summaries.
 *
 * For every method with a body, computes the set of fields the method
 * *and its CHA-resolvable callees* may read or write, plus coarse flags
 * for array-element effects and calls whose targets cannot be resolved.
 * Summaries are a fixpoint over the CHA call graph, so recursion and
 * virtual dispatch through subclasses are covered.
 *
 * The race stage uses summaries as a cheap report-preserving prefilter:
 * two accesses can only race on memory both enclosing methods may
 * touch, and each access's own field is in its method's summary by
 * construction, so dropping pairs with disjoint summaries never drops a
 * reportable pair (see race/racy.cc).
 *
 * Soundness notes on the key spaces:
 *  - static fields use the same canonical "DeclaringClass.field" key as
 *    PointsToResult::staticKey (declaring class found via CHA, falling
 *    back to the referenced class name);
 *  - instance fields are keyed by *bare field name* only. The canonical
 *    instance key depends on the receiver's dynamic class, which a
 *    points-to-free summary cannot know (a subclass may shadow a
 *    super's field); the bare name over-approximates every possible
 *    canonical key.
 *
 * Representation: every key is interned once into a FieldEffects-owned
 * StringInterner and summaries hold dense bitsets over those ids, so
 * the mayConflict prefilter inside the quadratic race pair loop is a
 * handful of word-AND scans instead of sorted string-set walks.
 */

#ifndef SIERRA_ANALYSIS_EFFECTS_HH
#define SIERRA_ANALYSIS_EFFECTS_HH

#include <string>
#include <string_view>
#include <unordered_map>

#include "air/module.hh"
#include "class_hierarchy.hh"
#include "util/bitset.hh"
#include "util/intern.hh"

namespace sierra::analysis {

/** Whole-module field-effect summaries, one per method with a body. */
class FieldEffects
{
  public:
    /** Set of effect keys as interned-id bits, with a string-lookup
     *  surface for tests and debugging. */
    struct EffectSet {
        util::ObjBitset bits;
        const util::StringInterner *names{nullptr};

        bool empty() const { return bits.empty(); }

        /** std::set<std::string>-compatible membership test. */
        size_t
        count(std::string_view key) const
        {
            if (names == nullptr)
                return 0;
            util::InternId id = names->find(key);
            return id == util::StringInterner::kInvalid
                       ? 0
                       : bits.count(static_cast<int>(id));
        }
    };

    /** May-effects of one method including its transitive callees. */
    struct Summary {
        EffectSet instanceWrites; //!< bare field names
        EffectSet instanceReads;  //!< bare field names
        EffectSet staticWrites;   //!< canonical Class.field
        EffectSet staticReads;    //!< canonical Class.field
        bool writesArrays{false};
        bool readsArrays{false};
        /** An invoke resolved to no analyzable body: effects unknown. */
        bool callsUnknown{false};

        /** Provably writes no field or array element. */
        bool isPure() const
        {
            return !callsUnknown && !writesArrays &&
                   instanceWrites.empty() && staticWrites.empty();
        }
    };

    FieldEffects(const air::Module &module, const ClassHierarchy &cha);

    /** Summary of one method; methods without bodies (or from another
     *  module) get the all-unknown summary. */
    const Summary &of(const air::Method *method) const;

    /** Can accesses inside `a` (and callees) conflict with accesses
     *  inside `b`: one side may write memory the other may touch? */
    static bool mayConflict(const Summary &a, const Summary &b);

    bool isPure(const air::Method *method) const
    {
        return of(method).isPure();
    }

    /** Number of summarized methods proved pure (for stats/bench). */
    int numPure() const;
    int numSummaries() const
    {
        return static_cast<int>(_summaries.size());
    }

  private:
    /** One key space for all summaries; ids index the bitsets. */
    util::StringInterner _keys;
    std::unordered_map<const air::Method *, Summary> _summaries;
    Summary _unknown;
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_EFFECTS_HH
