/**
 * @file
 * Method purity / field-effect summaries.
 *
 * For every method with a body, computes the set of fields the method
 * *and its CHA-resolvable callees* may read or write, plus coarse flags
 * for array-element effects and calls whose targets cannot be resolved.
 * Summaries are a fixpoint over the CHA call graph, so recursion and
 * virtual dispatch through subclasses are covered.
 *
 * The race stage uses summaries as a cheap report-preserving prefilter:
 * two accesses can only race on memory both enclosing methods may
 * touch, and each access's own field is in its method's summary by
 * construction, so dropping pairs with disjoint summaries never drops a
 * reportable pair (see race/racy.cc).
 *
 * Soundness notes on the key spaces:
 *  - static fields use the same canonical "DeclaringClass.field" key as
 *    PointsToResult::staticKey (declaring class found via CHA, falling
 *    back to the referenced class name);
 *  - instance fields are keyed by *bare field name* only. The canonical
 *    instance key depends on the receiver's dynamic class, which a
 *    points-to-free summary cannot know (a subclass may shadow a
 *    super's field); the bare name over-approximates every possible
 *    canonical key.
 */

#ifndef SIERRA_ANALYSIS_EFFECTS_HH
#define SIERRA_ANALYSIS_EFFECTS_HH

#include <set>
#include <string>
#include <unordered_map>

#include "air/module.hh"
#include "class_hierarchy.hh"

namespace sierra::analysis {

/** Whole-module field-effect summaries, one per method with a body. */
class FieldEffects
{
  public:
    /** May-effects of one method including its transitive callees. */
    struct Summary {
        std::set<std::string> instanceWrites; //!< bare field names
        std::set<std::string> instanceReads;  //!< bare field names
        std::set<std::string> staticWrites;   //!< canonical Class.field
        std::set<std::string> staticReads;    //!< canonical Class.field
        bool writesArrays{false};
        bool readsArrays{false};
        /** An invoke resolved to no analyzable body: effects unknown. */
        bool callsUnknown{false};

        /** Provably writes no field or array element. */
        bool isPure() const
        {
            return !callsUnknown && !writesArrays &&
                   instanceWrites.empty() && staticWrites.empty();
        }
    };

    FieldEffects(const air::Module &module, const ClassHierarchy &cha);

    /** Summary of one method; methods without bodies (or from another
     *  module) get the all-unknown summary. */
    const Summary &of(const air::Method *method) const;

    /** Can accesses inside `a` (and callees) conflict with accesses
     *  inside `b`: one side may write memory the other may touch? */
    static bool mayConflict(const Summary &a, const Summary &b);

    bool isPure(const air::Method *method) const
    {
        return of(method).isPure();
    }

    /** Number of summarized methods proved pure (for stats/bench). */
    int numPure() const;
    int numSummaries() const
    {
        return static_cast<int>(_summaries.size());
    }

  private:
    std::unordered_map<const air::Method *, Summary> _summaries;
    Summary _unknown;
};

} // namespace sierra::analysis

#endif // SIERRA_ANALYSIS_EFFECTS_HH
