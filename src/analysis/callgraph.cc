#include "callgraph.hh"

#include <algorithm>

namespace sierra::analysis {

const std::vector<NodeId> CallGraph::_emptyNodes;

NodeId
CallGraph::internNode(const air::Method *method, CtxId ctx)
{
    auto key = std::make_pair(method, ctx);
    auto it = _index.find(key);
    if (it != _index.end())
        return it->second;
    NodeId id = static_cast<NodeId>(_nodes.size());
    _nodes.push_back({method, ctx});
    _edges.emplace_back(_arena);
    _reverse.emplace_back();
    _actionsOf.emplace_back(_arena);
    _index.emplace(key, id);
    _byMethod[method].push_back(id);
    return id;
}

NodeId
CallGraph::findNode(const air::Method *method, CtxId ctx) const
{
    auto it = _index.find(std::make_pair(method, ctx));
    return it == _index.end() ? -1 : it->second;
}

bool
CallGraph::addEdge(NodeId caller, SiteId site, NodeId callee)
{
    auto &edges = _edges[caller];
    for (const auto &e : edges) {
        if (e.site == site && e.callee == callee)
            return false;
    }
    edges.push_back({site, callee});
    auto &rev = _reverse[callee];
    if (std::find(rev.begin(), rev.end(), caller) == rev.end())
        rev.push_back(caller);
    return true;
}

const std::vector<NodeId> &
CallGraph::nodesOfMethod(const air::Method *m) const
{
    auto it = _byMethod.find(m);
    return it == _byMethod.end() ? _emptyNodes : it->second;
}

} // namespace sierra::analysis
