#include "escape.hh"

#include <deque>

namespace sierra::analysis {

const char *
escapeReasonName(EscapeReason r)
{
    switch (r) {
      case EscapeReason::None: return "none";
      case EscapeReason::StaticField: return "static-field";
      case EscapeReason::SyntheticPayload: return "synthetic-payload";
      case EscapeReason::MultiAction: return "multi-action";
    }
    return "?";
}

EscapeAnalysis::EscapeAnalysis(const PointsToResult &pts)
{
    const int num_objects = static_cast<int>(pts.objects.size());
    _reasons.assign(static_cast<size_t>(num_objects),
                    EscapeReason::None);

    std::deque<ObjId> work;
    auto mark = [&](ObjId obj, EscapeReason reason) {
        if (obj < 0 || obj >= num_objects)
            return;
        if (_reasons[static_cast<size_t>(obj)] != EscapeReason::None)
            return;
        _reasons[static_cast<size_t>(obj)] = reason;
        ++_numEscaping;
        work.push_back(obj);
    };

    // Root 1: static-field points-to sets.
    for (const auto &[key, objs] : pts.staticPts) {
        for (ObjId obj : objs)
            mark(obj, EscapeReason::StaticField);
    }

    // Root 2: framework payloads crossing the action boundary.
    for (ObjId obj = 0; obj < num_objects; ++obj) {
        if (pts.objects.get(obj).kind == ObjKind::Synthetic)
            mark(obj, EscapeReason::SyntheticPayload);
    }

    // Root 3: objects visible to two or more actions' code. Attribute
    // each object to the actions of every node whose registers may
    // hold it; the ObjId order of the outer structures keeps the
    // attribution deterministic.
    std::vector<ObjSet> touched_by(static_cast<size_t>(num_objects));
    const int num_nodes = static_cast<int>(pts.regPts.size());
    for (NodeId node = 0; node < num_nodes; ++node) {
        const ObjSet &actions = pts.cg.actionsOf(node);
        if (actions.empty())
            continue;
        for (const ObjSet &objs :
             pts.regPts[static_cast<size_t>(node)]) {
            for (ObjId obj : objs) {
                if (obj < 0 || obj >= num_objects)
                    continue;
                touched_by[static_cast<size_t>(obj)].unionWith(actions);
            }
        }
    }
    for (ObjId obj = 0; obj < num_objects; ++obj) {
        if (touched_by[static_cast<size_t>(obj)].size() >= 2)
            mark(obj, EscapeReason::MultiAction);
    }

    // Close under field reachability: a shared object's fields are
    // shared too (a second action holding the root can walk to them).
    while (!work.empty()) {
        ObjId obj = work.front();
        work.pop_front();
        EscapeReason reason = _reasons[static_cast<size_t>(obj)];
        auto it = pts.fieldPts.lower_bound({obj, FieldId{0}});
        for (; it != pts.fieldPts.end() && it->first.first == obj;
             ++it) {
            for (ObjId target : it->second)
                mark(target, reason);
        }
    }
}

EscapeReason
EscapeAnalysis::reasonOf(ObjId obj) const
{
    if (obj < 0 || obj >= static_cast<ObjId>(_reasons.size()))
        return EscapeReason::MultiAction; // unknown: stay conservative
    return _reasons[static_cast<size_t>(obj)];
}

} // namespace sierra::analysis
