#include "dataflow.hh"

#include <algorithm>

#include "air/logging.hh"

namespace sierra::analysis {

using air::Instruction;
using air::Opcode;

namespace dataflow_detail {

std::vector<int>
blockOrder(const Cfg &cfg, DataflowDirection dir)
{
    const int n = cfg.numBlocks();
    const bool forward = dir == DataflowDirection::Forward;
    const int root = forward ? cfg.entryBlock() : cfg.exitBlock();

    std::vector<int> postorder;
    std::vector<char> seen(n, 0);
    // Iterative DFS with an explicit edge cursor per frame.
    std::vector<std::pair<int, size_t>> stack{{root, 0}};
    seen[root] = 1;
    while (!stack.empty()) {
        auto &[b, cursor] = stack.back();
        const auto &next = forward ? cfg.blocks()[b].succs
                                   : cfg.blocks()[b].preds;
        if (cursor < next.size()) {
            int t = next[cursor++];
            if (!seen[t]) {
                seen[t] = 1;
                stack.push_back({t, 0});
            }
        } else {
            postorder.push_back(b);
            stack.pop_back();
        }
    }
    std::vector<int> order(postorder.rbegin(), postorder.rend());
    for (int b = 0; b < n; ++b) {
        if (!seen[b])
            order.push_back(b);
    }
    return order;
}

} // namespace dataflow_detail

// ---------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------

namespace {

ConstVal
constTop()
{
    ConstVal v;
    v.state = ConstVal::State::Top;
    return v;
}

ConstVal
constOf(int64_t value)
{
    ConstVal v;
    v.state = ConstVal::State::Const;
    v.value = value;
    return v;
}

/** Meet of two (Const | Top) values. */
ConstVal
constMeet(const ConstVal &a, const ConstVal &b)
{
    if (a.isConst() && b.isConst() && a.value == b.value)
        return a;
    return constTop();
}

/**
 * Decide a conditional branch under a register environment.
 * @return 1 = always taken, 0 = never taken, -1 = unknown.
 */
int
evalBranch(const Instruction &instr, const std::vector<ConstVal> &env)
{
    const ConstVal &lhs = env[instr.srcs[0]];
    if (!lhs.isConst())
        return -1;
    int64_t rhs = 0;
    if (instr.op == Opcode::If) {
        const ConstVal &r = env[instr.srcs[1]];
        if (!r.isConst())
            return -1;
        rhs = r.value;
    }
    return air::evalCond(instr.cond, lhs.value, rhs) ? 1 : 0;
}

/** The conditional-constant-propagation problem for the solver. */
struct ConstProblem {
    using Domain = std::vector<ConstVal>;
    static constexpr DataflowDirection kDirection =
        DataflowDirection::Forward;

    int numRegisters;

    Domain
    boundary() const
    {
        // Parameters (and, conservatively, uninitialized temporaries)
        // hold arbitrary values: facts must cover every invocation.
        return Domain(static_cast<size_t>(numRegisters), constTop());
    }

    bool
    merge(Domain &into, const Domain &from) const
    {
        bool changed = false;
        for (size_t r = 0; r < into.size(); ++r) {
            ConstVal met = constMeet(into[r], from[r]);
            if (met.state != into[r].state ||
                (met.isConst() && met.value != into[r].value)) {
                into[r] = met;
                changed = true;
            }
        }
        return changed;
    }

    void
    transfer(int, const Instruction &instr, Domain &d) const
    {
        MethodConstants::transferInstr(instr, d);
    }

    bool
    edgeTransfer(const Cfg &cfg, int from, int to, Domain &d) const
    {
        const auto &fb = cfg.blocks()[from];
        if (fb.first > fb.last)
            return true; // synthetic exit block
        const Instruction &last = cfg.method().instr(fb.last);
        if (!last.isConditionalBranch())
            return true;
        const int target_block = cfg.blockOf(last.target);
        const int fall_block =
            fb.last + 1 < cfg.method().numInstrs()
                ? cfg.blockOf(fb.last + 1)
                : -1;
        if (target_block == fall_block)
            return true; // one edge either way: no information

        // `d` is the post-block state, i.e. the environment at the
        // branch; transferInstr is a no-op for branches.
        const bool is_target_edge = to == target_block;
        const int verdict = evalBranch(last, d);
        if (verdict == 1 && !is_target_edge)
            return false;
        if (verdict == 0 && is_target_edge)
            return false;

        // Refine an equality edge: after "if (r == c)" is taken (or
        // "if (r != c)" falls through), r is known to be c.
        air::CondKind effective =
            is_target_edge ? last.cond : air::negateCond(last.cond);
        if (effective == air::CondKind::Eq) {
            int reg = -1;
            int64_t value = 0;
            if (last.op == Opcode::IfZ) {
                reg = last.srcs[0];
                value = 0;
            } else if (d[last.srcs[1]].isConst()) {
                reg = last.srcs[0];
                value = d[last.srcs[1]].value;
            } else if (d[last.srcs[0]].isConst()) {
                reg = last.srcs[1];
                value = d[last.srcs[0]].value;
            }
            if (reg >= 0 && !d[reg].isConst())
                d[reg] = constOf(value);
        }
        return true;
    }
};

} // namespace

void
MethodConstants::transferInstr(const Instruction &instr,
                               std::vector<ConstVal> &env)
{
    switch (instr.op) {
      case Opcode::ConstInt:
        env[instr.dst] = constOf(instr.intValue);
        break;
      case Opcode::ConstNull:
        env[instr.dst] = constOf(0);
        break;
      case Opcode::Move:
        env[instr.dst] = env[instr.srcs[0]];
        break;
      case Opcode::BinOp: {
        const ConstVal &l = env[instr.srcs[0]];
        const ConstVal &r = env[instr.srcs[1]];
        env[instr.dst] =
            l.isConst() && r.isConst()
                ? constOf(air::evalBinOp(instr.binop, l.value, r.value))
                : constTop();
        break;
      }
      case Opcode::UnOp: {
        const ConstVal &s = env[instr.srcs[0]];
        if (s.isConst()) {
            // Matches the dynamic interpreter: Not is logical.
            env[instr.dst] = constOf(instr.unop == air::UnOpKind::Not
                                         ? (s.value == 0 ? 1 : 0)
                                         : -s.value);
        } else {
            env[instr.dst] = constTop();
        }
        break;
      }
      default:
        // Loads, calls, allocations, ConstStr: unknown value. (New is
        // non-null but not a *known* integer; modeling it as a constant
        // would fold comparisons between two distinct allocations.)
        if (instr.dst >= 0)
            env[instr.dst] = constTop();
        break;
    }
}

MethodConstants::MethodConstants(const Cfg &cfg) : _method(&cfg.method())
{
    const air::Method &m = cfg.method();
    const int n = m.numInstrs();
    _reachable.assign(n, 0);
    _before.assign(
        n, std::vector<ConstVal>(static_cast<size_t>(m.numRegisters())));

    ConstProblem problem{m.numRegisters()};
    DataflowResult<ConstProblem::Domain> r =
        solveDataflow(cfg, problem);

    for (const BasicBlock &block : cfg.blocks()) {
        if (block.first > block.last)
            continue; // synthetic exit
        if (!r.reached[block.id])
            continue; // whole block statically unreachable
        std::vector<ConstVal> env = r.atEntry[block.id];
        for (int i = block.first; i <= block.last; ++i) {
            _reachable[i] = 1;
            _before[i] = env;
            transferInstr(m.instr(i), env);
        }

        // Record branch edges the fixpoint proved infeasible, keyed by
        // instruction indices for the backward executor.
        const Instruction &last = m.instr(block.last);
        if (!last.isConditionalBranch())
            continue;
        const int target_block = cfg.blockOf(last.target);
        const int fall_block =
            block.last + 1 < n ? cfg.blockOf(block.last + 1) : -1;
        if (target_block == fall_block)
            continue;
        const int verdict = evalBranch(last, _before[block.last]);
        if (verdict == 1 && fall_block >= 0)
            _infeasible.insert({block.last, block.last + 1});
        else if (verdict == 0)
            _infeasible.insert({block.last, last.target});
    }
}

ConstVal
MethodConstants::before(int instr, int reg) const
{
    if (!_reachable[instr])
        return {}; // Bottom: the instruction cannot execute
    return _before[instr][reg];
}

ConstVal
MethodConstants::after(int instr, int reg) const
{
    if (!_reachable[instr])
        return {};
    std::vector<ConstVal> env = _before[instr];
    transferInstr(_method->instr(instr), env);
    return env[reg];
}

// ---------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------

namespace {

struct ReachingProblem {
    using Domain = std::vector<std::set<int>>;
    static constexpr DataflowDirection kDirection =
        DataflowDirection::Forward;

    int numRegisters;
    int firstTempReg;

    Domain
    boundary() const
    {
        Domain d(static_cast<size_t>(numRegisters));
        for (int r = 0; r < firstTempReg; ++r)
            d[r].insert(ReachingDefs::kEntryDef);
        return d;
    }

    bool
    merge(Domain &into, const Domain &from) const
    {
        bool changed = false;
        for (size_t r = 0; r < into.size(); ++r) {
            for (int def : from[r])
                changed |= into[r].insert(def).second;
        }
        return changed;
    }

    void
    transfer(int idx, const Instruction &instr, Domain &d) const
    {
        if (instr.writesRegister())
            d[instr.dst] = {idx};
    }
};

} // namespace

ReachingDefs::ReachingDefs(const Cfg &cfg) : _cfg(cfg)
{
    ReachingProblem problem{cfg.method().numRegisters(),
                            cfg.method().firstTempReg()};
    DataflowResult<ReachingProblem::Domain> r =
        solveDataflow(cfg, problem);
    _atBlockEntry = std::move(r.atEntry);
    _reached = std::move(r.reached);
}

std::vector<int>
ReachingDefs::reaching(int instr, int reg) const
{
    const int b = _cfg.blockOf(instr);
    if (!_reached[b])
        return {};
    ReachingProblem::Domain env = _atBlockEntry[b];
    ReachingProblem problem{_cfg.method().numRegisters(),
                            _cfg.method().firstTempReg()};
    for (int i = _cfg.blocks()[b].first; i < instr; ++i)
        problem.transfer(i, _cfg.method().instr(i), env);
    return {env[reg].begin(), env[reg].end()};
}

// ---------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------

namespace {

struct LivenessProblem {
    using Domain = std::vector<char>;
    static constexpr DataflowDirection kDirection =
        DataflowDirection::Backward;

    int numRegisters;

    Domain
    boundary() const
    {
        return Domain(static_cast<size_t>(numRegisters), 0);
    }

    bool
    merge(Domain &into, const Domain &from) const
    {
        bool changed = false;
        for (size_t r = 0; r < into.size(); ++r) {
            if (from[r] && !into[r]) {
                into[r] = 1;
                changed = true;
            }
        }
        return changed;
    }

    void
    transfer(int, const Instruction &instr, Domain &d) const
    {
        if (instr.dst >= 0)
            d[instr.dst] = 0;
        for (int src : instr.srcs)
            d[src] = 1;
    }
};

} // namespace

Liveness::Liveness(const Cfg &cfg)
{
    const air::Method &m = cfg.method();
    LivenessProblem problem{m.numRegisters()};
    DataflowResult<LivenessProblem::Domain> r =
        solveDataflow(cfg, problem);

    // Conservative default for blocks the backward solve never reached
    // (code that cannot fall through to an exit): everything live.
    _liveAfter.assign(
        m.numInstrs(),
        std::vector<char>(static_cast<size_t>(m.numRegisters()), 1));
    for (const BasicBlock &block : cfg.blocks()) {
        if (block.first > block.last || !r.reached[block.id])
            continue;
        LivenessProblem::Domain live = r.atExit[block.id];
        for (int i = block.last; i >= block.first; --i) {
            _liveAfter[i] = live;
            problem.transfer(i, m.instr(i), live);
        }
    }
}

} // namespace sierra::analysis
