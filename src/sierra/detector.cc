#include "detector.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <string_view>
#include <tuple>

#include "air/logging.hh"
#include "framework/known_api.hh"
#include "util/thread_pool.hh"
#include "util/trace.hh"

namespace sierra {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Fold one harness task's counters and stage times into the metrics
 * registry. Called from the serial plan-order merge, so the registry
 * contents are identical at every jobs count (the catalog of names
 * lives in docs/OBSERVABILITY.md; metrics_test pins the counters that
 * mirror report fields).
 */
void
fillMetrics(util::metrics::Registry &m, const HarnessAnalysis &ha,
            const StageTimes &t)
{
    const analysis::PtaStats &pta = ha.pta->stats;
    m.add("pta.worklist_iterations", pta.worklistIterations);
    m.add("pta.local_passes", pta.localPasses);
    m.add("pta.instr_visits", pta.instrVisits);
    m.add("pta.delta_props", pta.deltaSkips);
    m.add("arena.bytes_allocated",
          static_cast<int64_t>(ha.pta->arena.bytesAllocated()));
    m.add("pta.cg_nodes", ha.pta->cg.numNodes());
    m.add("pta.actions", ha.numActions());

    m.add("shbg.direct_edges",
          static_cast<int64_t>(ha.shbg->directEdges().size()));
    m.add("shbg.closure_pairs", ha.hbEdges());

    m.add("race.accesses_extracted", ha.accessesTotal);
    m.add("race.accesses_dropped", ha.accessesDropped);
    m.add("race.access_pairs_considered",
          ha.racyStats.accessPairsConsidered);
    m.add("race.prefilter_skipped", ha.racyStats.prefilterSkipped);
    m.add("race.alias_checked", ha.racyStats.aliasChecked);
    m.add("race.racy_pairs", ha.racyPairCount());
    m.add("race.lockset_refuted", ha.locksetRefuted);
    m.add("race.enablement_refuted", ha.enablementRefuted);

    const analysis::EnablementStats &en = ha.enablementStats;
    m.add("enablement.tracked_actions", en.trackedActions);
    m.add("enablement.enable_sites", en.enableSites);
    m.add("enablement.disable_sites", en.disableSites);
    m.add("enablement.disablers", en.disablers);
    m.add("enablement.queries", en.queries);
    m.add("enablement.exonerated", en.exonerated);

    const symbolic::RefutationStats &ref = ha.refutation;
    m.add("symbolic.refuted", ref.refuted);
    m.add("symbolic.survived", ref.survived);
    m.add("symbolic.timed_out", ref.timedOut);
    m.add("symbolic.queries", ref.exec.queries);
    m.add("symbolic.paths_explored", ref.exec.pathsExplored);
    m.add("symbolic.states_expanded", ref.exec.statesExpanded);
    m.add("symbolic.cache_hits", ref.exec.cacheHits);
    m.add("symbolic.budget_exhausted", ref.exec.budgetExhausted);
    m.add("symbolic.const_pruned", ref.exec.constPruned);
    m.add("symbolic.inter_pruned", ref.exec.interPruned);
    m.add("symbolic.inter_applied", ref.exec.interApplied);

    if (ha.inter) {
        const analysis::IfdsStats &ifds = ha.inter->stats();
        m.add("ifds.methods", ifds.methods);
        m.add("ifds.summary_computations", ifds.summaryComputations);
        m.add("ifds.summary_reuses", ifds.summaryReuses);
        m.add("ifds.must_write_facts", ifds.mustWriteFacts);
        m.add("ifds.budget_exhausted", ifds.budgetExhausted ? 1 : 0);
    }
    m.add("ifds.use_after_destroy",
          static_cast<int64_t>(ha.useAfterDestroy.size()));

    const analysis::NullFlowStats &nf = ha.nullflowStats;
    m.add("nullflow.queries", nf.queries);
    m.add("nullflow.sinks_examined", nf.sinksExamined);
    m.add("nullflow.stores_indexed", nf.storesIndexed);
    m.add("nullflow.null_stores", nf.nullStores);
    m.add("nullflow.guarded", nf.guarded);
    m.add("nullflow.harmful", nf.harmful);
    m.add("nullflow.dom_trees", nf.domTrees);
    m.add("nullflow.classified", ha.nullflowClassified);

    m.add("deadlock.observations", ha.deadlockStats.observations);
    m.add("deadlock.lock_nodes", ha.deadlockStats.lockNodes);
    m.add("deadlock.lock_edges", ha.deadlockStats.lockEdges);
    m.add("deadlock.cycles_examined", ha.deadlockStats.cyclesExamined);
    m.add("deadlock.findings",
          static_cast<int64_t>(ha.deadlocks.size()));

    // Per-pair refutation provenance (RefutedBy kinds).
    int64_t by_none = 0, by_lockset = 0, by_enablement = 0,
            by_symbolic = 0;
    for (const race::RacyPair &p : ha.pairs) {
        switch (p.refutedBy) {
          case race::RefutedBy::None: ++by_none; break;
          case race::RefutedBy::Lockset: ++by_lockset; break;
          case race::RefutedBy::Enablement: ++by_enablement; break;
          case race::RefutedBy::Symbolic: ++by_symbolic; break;
        }
    }
    m.add("refuted_by.none", by_none);
    m.add("refuted_by.lockset", by_lockset);
    m.add("refuted_by.enablement", by_enablement);
    m.add("refuted_by.symbolic", by_symbolic);

    // Per-harness stage durations as histograms (seconds).
    m.observe("stage.cg_pa.seconds", t.cgPa);
    m.observe("stage.hbg.seconds", t.hbg);
    m.observe("stage.dataflow.seconds", t.dataflow);
    m.observe("stage.escape.seconds", t.escape);
    m.observe("stage.racy.seconds", t.racy);
    m.observe("stage.lockset.seconds", t.lockset);
    m.observe("stage.deadlock.seconds", t.deadlock);
    m.observe("stage.enablement.seconds", t.enablement);
    m.observe("stage.ifds.seconds", t.ifds);
    m.observe("stage.refutation.seconds", t.refutation);
    m.observe("stage.nullflow.seconds", t.nullflow);
    m.observe("harness.cpu.seconds", t.totalCpu);
}

} // namespace

int
HarnessAnalysis::survivingRaceCount() const
{
    int n = 0;
    for (const auto &p : pairs) {
        if (!p.refuted)
            ++n;
    }
    return n;
}

SierraDetector::SierraDetector(framework::App &app)
    : SierraDetector(app, SierraOptions{})
{
}

SierraDetector::SierraDetector(framework::App &app,
                               const SierraOptions &options)
    : _app(app)
{
    harness::HarnessGenerator gen(app, options.icc);
    _plans = gen.generateAll();
    if (gen.icc())
        _iccStats = gen.icc()->stats();
}

const harness::HarnessPlan &
SierraDetector::planFor(const std::string &activity)
{
    for (const auto &plan : _plans) {
        if (plan.activityClass == activity)
            return plan;
    }
    fatal("no harness for activity ", activity);
}

HarnessAnalysis
SierraDetector::runHarness(const harness::HarnessPlan &plan,
                           const SierraOptions &options,
                           StageTimes *times)
{
    HarnessAnalysis ha;
    ha.activity = plan.activityClass;
    SIERRA_TRACE_SPAN(task_span, "task", "harness",
                      util::trace::arg("activity", plan.activityClass));

    auto t0 = std::chrono::steady_clock::now();
    double cg_pa;
    {
        SIERRA_TRACE_SPAN(span, "stage", "stage.cg_pa",
                          util::trace::arg("activity", ha.activity));
        analysis::PointsToAnalysis pta(_app, plan, options.pta);
        ha.pta = pta.run();
        cg_pa = secondsSince(t0);
    }

    auto t1 = std::chrono::steady_clock::now();
    double hbg;
    {
        SIERRA_TRACE_SPAN(span, "stage", "stage.hbg",
                          util::trace::arg("activity", ha.activity));
        hb::HbBuilder hb_builder(*ha.pta, plan, _app, options.hb);
        ha.shbg = hb_builder.build();
        hbg = secondsSince(t1);
    }

    // Dataflow stage: field-effect summaries feeding the racy-pair
    // prefilter. Per-task (each task owns its result), so the stage
    // parallelizes with the rest of the harness work.
    auto t_df = std::chrono::steady_clock::now();
    std::unique_ptr<analysis::FieldEffects> effects;
    race::RacyOptions racy_options = options.racy;
    racy_options.stats = &ha.racyStats;
    if (options.effectPrefilter && !racy_options.effects) {
        SIERRA_TRACE_SPAN(span, "stage", "stage.dataflow",
                          util::trace::arg("activity", ha.activity));
        effects = std::make_unique<analysis::FieldEffects>(
            _app.module(), ha.pta->cha);
        racy_options.effects = effects.get();
    }
    double dataflow = secondsSince(t_df);

    auto t2 = std::chrono::steady_clock::now();
    double racy;
    {
        SIERRA_TRACE_SPAN(span, "stage", "stage.racy.extract",
                          util::trace::arg("activity", ha.activity));
        ha.accesses = race::extractAccesses(*ha.pta);
        ha.accessesTotal = static_cast<int>(ha.accesses.size());
        racy = secondsSince(t2);
    }

    // Escape stage: drop accesses whose every base object is
    // thread-local before the quadratic pair loop (report-preserving,
    // see analysis/escape.hh).
    auto t_esc = std::chrono::steady_clock::now();
    double escape;
    std::vector<char> live;
    {
        SIERRA_TRACE_SPAN(span, "stage", "stage.escape",
                          util::trace::arg("activity", ha.activity));
        if (options.escapeFilter) {
            analysis::EscapeAnalysis esc(*ha.pta);
            live = race::escapeLiveMask(esc, ha.accesses);
            racy_options.liveAccess = &live;
            for (char kept : live) {
                if (!kept)
                    ++ha.accessesDropped;
            }
        }
        escape = secondsSince(t_esc);
    }

    auto t2b = std::chrono::steady_clock::now();
    {
        SIERRA_TRACE_SPAN(span, "stage", "stage.racy.pairs",
                          util::trace::arg("activity", ha.activity));
        ha.pairs = race::findRacyPairs(*ha.pta, *ha.shbg, ha.accesses,
                                       racy_options);
        racy += secondsSince(t2b);
    }

    // Lock-set stage: refute pairs protected by a common must-held
    // monitor on every (background-involving) action pair, so they
    // never reach the expensive symbolic refuter.
    auto t_ls = std::chrono::steady_clock::now();
    double lockset;
    std::unique_ptr<analysis::LockSetAnalysis> locks;
    {
        SIERRA_TRACE_SPAN(span, "stage", "stage.lockset",
                          util::trace::arg("activity", ha.activity));
        if (options.locksetRefutation) {
            locks = std::make_unique<analysis::LockSetAnalysis>(
                *ha.pta);
            ha.locksetRefuted = race::refuteWithLockSets(
                *ha.pta, *locks, ha.accesses, ha.pairs);
        }
        lockset = secondsSince(t_ls);
    }

    // Deadlock stage: cyclic lock acquisitions over the same lock-set
    // substrate (shared with the refuter above when both are on).
    // Purely additive — it refutes no pairs, it only produces the
    // `deadlocks:` findings.
    auto t_dl = std::chrono::steady_clock::now();
    double deadlock;
    {
        SIERRA_TRACE_SPAN(span, "stage", "stage.deadlock",
                          util::trace::arg("activity", ha.activity));
        if (options.deadlock) {
            if (!locks) {
                locks = std::make_unique<analysis::LockSetAnalysis>(
                    *ha.pta);
            }
            ha.deadlocks = analysis::findDeadlocks(
                *ha.pta, *locks,
                [&](int a, int b) { return ha.shbg->reaches(a, b); },
                &ha.deadlockStats);
        }
        deadlock = secondsSince(t_dl);
    }
    locks.reset();

    // Enablement stage: registration typestate composed with SHBG
    // reachability — refute pairs whose callback is must-disabled at
    // every point the other action can run. Demand-driven: the scan
    // and typestate solves only happen when pairs survived lockset.
    auto t_en = std::chrono::steady_clock::now();
    double enablement;
    {
        SIERRA_TRACE_SPAN(span, "stage", "stage.enablement",
                          util::trace::arg("activity", ha.activity));
        if (options.enablement) {
            bool any_surviving = false;
            for (const race::RacyPair &p : ha.pairs) {
                if (!p.refuted) {
                    any_surviving = true;
                    break;
                }
            }
            if (any_surviving) {
                const framework::KnownApis apis(_app.module());
                analysis::EnablementAnalysis en(*ha.pta, apis);
                ha.enablementRefuted = race::refuteWithEnablement(
                    en,
                    [&](int a, int b) { return ha.shbg->reaches(a, b); },
                    ha.pairs);
                ha.enablementStats = en.stats();
            }
        }
        enablement = secondsSince(t_en);
    }

    // IFDS stage: interprocedural constant summaries for the symbolic
    // refuter (setter parameters, callee returns, must-write-constant
    // call effects) plus the use-after-destroy typestate client.
    auto t_ifds = std::chrono::steady_clock::now();
    double ifds;
    {
        SIERRA_TRACE_SPAN(span, "stage", "stage.ifds",
                          util::trace::arg("activity", ha.activity));
        if (options.ifds) {
            ha.inter =
                std::make_unique<analysis::InterConstants>(*ha.pta);
            ha.useAfterDestroy = analysis::findUseAfterDestroy(
                *ha.pta, *ha.inter, [&](int a, int b) {
                    return ha.shbg->reaches(a, b);
                });
        }
        ifds = secondsSince(t_ifds);
    }

    auto t3 = std::chrono::steady_clock::now();
    double refutation;
    {
        SIERRA_TRACE_SPAN(span, "stage", "stage.refutation",
                          util::trace::arg("activity", ha.activity));
        if (options.runRefutation) {
            symbolic::RefuterOptions refuter_options = options.refuter;
            refuter_options.exec.inter = ha.inter.get();
            ha.refutation = symbolic::refuteRaces(
                *ha.pta, ha.accesses, ha.pairs, refuter_options);
        }
        // The refuter may shard across worker threads; its summed
        // per-worker thread-CPU is the stage's cpu cost. The task
        // thread's own wall clock is the floor (it covers the
        // single-threaded path and the fan-out overhead), so worker
        // CPU is added on top of it, never lost.
        double wall = secondsSince(t3);
        refutation =
            std::max(wall, ha.refutation.cpuSeconds);
    }

    // Null-value-flow stage: classify surviving pairs by whether
    // losing the race dereferences null (analysis/nullflow.hh).
    // Demand-driven like enablement: the store index and dominator
    // trees are only built when pairs survived every refuter.
    auto t_nf = std::chrono::steady_clock::now();
    double nullflow;
    {
        SIERRA_TRACE_SPAN(span, "stage", "stage.nullflow",
                          util::trace::arg("activity", ha.activity));
        if (options.nullflow) {
            bool any_surviving = false;
            for (const race::RacyPair &p : ha.pairs) {
                if (!p.refuted) {
                    any_surviving = true;
                    break;
                }
            }
            if (any_surviving) {
                const framework::KnownApis apis(_app.module());
                analysis::NullFlowAnalysis nf(
                    *ha.pta, ha.inter.get(), apis, [&](int a, int b) {
                        return ha.shbg->reaches(a, b);
                    });
                ha.nullflowClassified = race::classifyWithNullFlow(
                    nf, ha.accesses, ha.pairs);
                ha.nullflowStats = nf.stats();
            }
        }
        nullflow = secondsSince(t_nf);
    }
    race::prioritize(*ha.pta, ha.accesses, ha.pairs);

    if (times) {
        times->cgPa += cg_pa;
        times->hbg += hbg;
        times->dataflow += dataflow;
        times->escape += escape;
        times->racy += racy;
        times->lockset += lockset;
        times->deadlock += deadlock;
        times->enablement += enablement;
        times->ifds += ifds;
        times->refutation += refutation;
        times->nullflow += nullflow;
        times->totalCpu += cg_pa + hbg + dataflow + escape + racy +
                           lockset + deadlock + enablement + ifds +
                           refutation + nullflow;
    }
    return ha;
}

HarnessAnalysis
SierraDetector::analyzeActivity(const std::string &activity,
                                const SierraOptions &options)
{
    return runHarness(planFor(activity), options, nullptr);
}

AppReport
SierraDetector::analyze(const SierraOptions &options)
{
    return analyze(options, nullptr);
}

AppReport
SierraDetector::analyze(const SierraOptions &options,
                        const HarnessReuse *reuse)
{
    AppReport report;
    report.app = _app.name();
    report.harnesses = static_cast<int>(_plans.size());
    report.enablementEnabled = options.enablement;
    report.nullflowEnabled = options.nullflow;

    const int num_plans = static_cast<int>(_plans.size());
    const int jobs = util::resolveJobs(options.jobs);
    const int plan_jobs = std::min(jobs, std::max(num_plans, 1));

    // Parallelism left over after the plan-level fan-out goes to each
    // task's sharded refutation (unless the caller pinned it).
    SierraOptions task_options = options;
    if (task_options.refuter.jobs <= 0)
        task_options.refuter.jobs = std::max(1, jobs / plan_jobs);

    auto t_total = std::chrono::steady_clock::now();
    SIERRA_TRACE_SPAN(analyze_span, "pipeline", "analyze",
                      util::trace::arg("app", _app.name()));

    // Reuse pass: consult the store serially in plan order before the
    // fan-out. A hit replaces the whole harness pipeline with a loaded
    // artifact; the merge below reads only artifact fields, so hits
    // and misses are indistinguishable in the report bytes.
    std::vector<HarnessArtifact> artifacts(
        static_cast<size_t>(std::max(num_plans, 1)));
    std::vector<char> reused(
        static_cast<size_t>(std::max(num_plans, 1)), 0);
    if (reuse && reuse->tryLoad) {
        SIERRA_TRACE_SPAN(span, "stage", "stage.store",
                          util::trace::arg("app", _app.name()));
        for (int i = 0; i < num_plans; ++i) {
            if (reuse->tryLoad(_plans[i], artifacts[i]))
                reused[i] = 1;
        }
    }
    int cold_plans = 0;
    for (int i = 0; i < num_plans; ++i)
        cold_plans += reused[i] ? 0 : 1;

    // App-level facts shared by every harness task. Both are pure
    // functions of the module and immutable after construction, so
    // building them once here instead of once per harness removes the
    // dominant redundant work from the plan fan-out (tasks only read
    // them concurrently). A fully warm submission runs no task and
    // needs neither.
    StageTimes app_times;
    std::shared_ptr<analysis::ClassHierarchy> app_cha;
    std::unique_ptr<analysis::FieldEffects> app_effects;
    if (cold_plans > 0) {
        app_cha =
            std::make_shared<analysis::ClassHierarchy>(_app.module());
        task_options.pta.sharedCha = app_cha;
        if (task_options.effectPrefilter &&
            !task_options.racy.effects) {
            auto t_df = std::chrono::steady_clock::now();
            SIERRA_TRACE_SPAN(span, "stage", "stage.dataflow",
                              util::trace::arg("app", _app.name()));
            app_effects = std::make_unique<analysis::FieldEffects>(
                _app.module(), *app_cha);
            task_options.racy.effects = app_effects.get();
            app_times.dataflow = secondsSince(t_df);
            app_times.totalCpu = app_times.dataflow;
        }
    }

    // One task per harness plan. Each task reads only shared-immutable
    // state and owns everything it produces, so tasks are independent;
    // results land in plan order regardless of completion order. Plans
    // answered from the store need no task at all -- on a fully warm
    // submission the fan-out (and its worker pool) is skipped.
    std::vector<StageTimes> task_times(
        static_cast<size_t>(std::max(num_plans, 1)));
    std::vector<HarnessAnalysis> analyses(
        static_cast<size_t>(std::max(num_plans, 1)));
    if (cold_plans > 0) {
        analyses = util::parallelMap<HarnessAnalysis>(
            std::min(plan_jobs, cold_plans), num_plans, [&](int i) {
                if (reused[i])
                    return HarnessAnalysis{};
                return runHarness(_plans[i], task_options,
                                  &task_times[i]);
            });
    }

    // Project fresh results into artifacts (serially, in plan order)
    // and offer them for persistence.
    for (int i = 0; i < num_plans; ++i) {
        if (reused[i])
            continue;
        artifacts[i] = makeArtifact(analyses[i]);
        if (reuse && reuse->onComputed)
            reuse->onComputed(_plans[i], analyses[i], artifacts[i]);
    }

    SIERRA_TRACE_SPAN(merge_span, "pipeline", "merge",
                      util::trace::arg("app", _app.name()));

    // Everything below is the deterministic merge, done serially in
    // plan order so the dedup map, aggregate counters and timing sums
    // are byte-identical at every jobs count.

    // App-level dedup across harnesses: a race keyed by its two access
    // sites (method + instruction) and location key. Keyed on stable
    // method names — never on air::Method pointers, whose run-to-run
    // values would make the iteration order nondeterministic.
    struct Key {
        std::string m1;
        int i1;
        std::string m2;
        int i2;
        std::string key;
        bool
        operator<(const Key &o) const
        {
            return std::tie(m1, i1, m2, i2, key) <
                   std::tie(o.m1, o.i1, o.m2, o.i2, o.key);
        }
    };
    struct Agg {
        AppRace race;
        bool survivesSomewhere{false};
        //! a surviving instance has stamped the severity; refuted
        //! instances carry Unknown and must not wash out a verdict
        bool haveSeverity{false};
    };
    std::map<Key, Agg> dedup;

    int64_t max_pairs_total = 0;

    for (int i = 0; i < num_plans; ++i) {
        const HarnessArtifact &art = artifacts[i];
        const harness::HarnessPlan &plan = _plans[i];

        // Plan-order, associative sums: totalCpu equals the sum of
        // the per-stage fields no matter which order the tasks
        // *finished* in (they were accumulated per task, merged here
        // serially). Reused plans contribute zero times and no
        // metrics -- no pipeline work happened for them.
        report.times.add(task_times[i]);

        if (options.metrics && !reused[i])
            fillMetrics(*options.metrics, analyses[i], task_times[i]);

        report.accessesDropped += art.accessesDropped;
        report.locksetRefuted += art.locksetRefuted;
        report.enablementRefuted += art.enablementRefuted;

        // Use-after-destroy findings, deduplicated across harnesses in
        // plan order (findings are already sorted per harness, so the
        // merged list is deterministic at every jobs count).
        for (const auto &f : art.useAfterDestroy) {
            if (std::find(report.useAfterDestroy.begin(),
                          report.useAfterDestroy.end(),
                          f) == report.useAfterDestroy.end())
                report.useAfterDestroy.push_back(f);
        }

        // Deadlock findings, same plan-order dedup: cycles are already
        // canonically rotated and sorted per harness, so equal cycles
        // found by several harnesses collapse deterministically.
        for (const auto &f : art.deadlocks) {
            if (std::find(report.deadlocks.begin(),
                          report.deadlocks.end(),
                          f) == report.deadlocks.end())
                report.deadlocks.push_back(f);
        }

        report.actions += art.actions;
        report.hbEdges += art.hbEdges;
        int n = art.actions;
        max_pairs_total += static_cast<int64_t>(n) * (n - 1) / 2;

        for (const ArtifactRace &r : art.races) {
            Key key{r.m1, r.i1, r.m2, r.i2, r.key};
            Agg &agg = dedup[key];
            if (agg.race.description.empty()) {
                agg.race.description = r.description;
                agg.race.priority = r.priority;
                agg.race.fieldKey = r.key;
            }
            agg.race.activities.push_back(plan.activityClass);
            if (!r.refuted) {
                agg.survivesSomewhere = true;
                // Highest-rank verdict of any surviving instance wins
                // (strict >, plan order: deterministic at every jobs
                // count). Initialized from the first surviving row so
                // a Guarded verdict is representable at all.
                if (!agg.haveSeverity ||
                    analysis::nullVerdictRank(r.severity) >
                        analysis::nullVerdictRank(agg.race.severity)) {
                    agg.race.severity = r.severity;
                    agg.race.severityChain = r.severityChain;
                    agg.haveSeverity = true;
                }
            }
        }
        report.perHarness.push_back(std::move(analyses[i]));
    }

    report.racyPairs = static_cast<int>(dedup.size());
    for (auto &[key, agg] : dedup) {
        agg.race.refuted = !agg.survivesSomewhere;
        if (agg.survivesSomewhere) {
            ++report.afterRefutation;
            if (agg.race.severity == analysis::NullVerdict::Harmful)
                ++report.harmfulRaces;
            else if (agg.race.severity ==
                     analysis::NullVerdict::Guarded)
                ++report.guardedRaces;
        }
        report.races.push_back(std::move(agg.race));
    }
    // Severity-ranked order: harmful > unknown > guarded within the
    // surviving block. With the stage off every verdict is Unknown and
    // this degenerates to the pre-nullflow order exactly.
    std::sort(report.races.begin(), report.races.end(),
              [](const AppRace &a, const AppRace &b) {
                  if (a.refuted != b.refuted)
                      return !a.refuted;
                  int ra = analysis::nullVerdictRank(a.severity);
                  int rb = analysis::nullVerdictRank(b.severity);
                  if (ra != rb)
                      return ra > rb;
                  if (a.priority != b.priority)
                      return a.priority > b.priority;
                  return a.description < b.description;
              });

    report.orderedPct =
        max_pairs_total > 0
            ? 100.0 * static_cast<double>(report.hbEdges) /
                  static_cast<double>(max_pairs_total)
            : 0.0;
    // Fold in the app-level shared-fact construction so totalCpu still
    // equals the sum of the per-stage fields.
    report.times.add(app_times);
    report.times.total = secondsSince(t_total);

    if (options.metrics) {
        util::metrics::Registry &m = *options.metrics;
        // ICC scan counters: computed once at construction (harness
        // generation), flushed here so they land in the registry
        // exactly once per analyze() at every jobs count.
        m.add("icc.call_sites", _iccStats.callSites);
        m.add("icc.resolved", _iccStats.resolved);
        m.add("icc.unresolved", _iccStats.unresolved);
        m.add("icc.pending_sites", _iccStats.pendingSites);
        m.add("icc.activity_edges", _iccStats.activityEdges);
        // AIR instruction storage, shared by every harness.
        m.add("arena.bytes_allocated",
              static_cast<int64_t>(
                  _app.module().arena().bytesAllocated()));
        // Counters are monotone; raise the peak-RSS counter to the
        // current process peak rather than summing repeated reads.
        int64_t rss = util::metrics::peakRssBytes();
        int64_t have = m.counter("mem.peak_rss_bytes");
        if (rss > have)
            m.add("mem.peak_rss_bytes", rss - have);
    }
    return report;
}

// Rendering StageTimes through this list is what keeps the `time:`
// line and the JSON `timesMs` object complete: a StageTimes field
// added without a row here trips the static_assert below.
std::vector<StageTimeEntry>
stageTimeEntries(const AppReport &report)
{
    const StageTimes &t = report.times;
    return {
        {"cgPa", "cg+pa", t.cgPa, true},
        {"hbg", "hbg", t.hbg, true},
        {"dataflow", "dataflow", t.dataflow, true},
        {"escape", "escape", t.escape, true},
        {"racy", "racy", t.racy, true},
        {"lockset", "lockset", t.lockset, true},
        {"deadlock", "deadlock", t.deadlock, true},
        {"enablement", "enablement", t.enablement,
         report.enablementEnabled},
        {"ifds", "ifds", t.ifds, true},
        {"refutation", "refutation", t.refutation, true},
        {"nullflow", "nullflow", t.nullflow, report.nullflowEnabled},
        {"totalCpu", "cpu", t.totalCpu, true},
        {"total", "total", t.total, true},
    };
}

// 13 doubles: 11 stages + totalCpu + total. Mirrors the entry list
// above; adding a StageTimes field updates this count and forces a
// matching stageTimeEntries row (report_times_test checks both
// renderings cover every entry).
static_assert(sizeof(StageTimes) == 13 * sizeof(double),
              "StageTimes changed: update stageTimeEntries()");

std::string
formatReport(const AppReport &report, int max_races, bool with_times)
{
    std::ostringstream os;
    os << "=== SIERRA report for " << report.app << " ===\n";
    os << "harnesses: " << report.harnesses
       << "  actions: " << report.actions
       << "  HB edges: " << report.hbEdges << " ("
       << static_cast<int>(report.orderedPct + 0.5) << "% ordered)\n";
    os << "racy pairs: " << report.racyPairs
       << "  lockset-refuted: " << report.locksetRefuted;
    // Emitted only when the stage ran, so --no-enablement output is
    // byte-identical to the stage-less report.
    if (report.enablementEnabled)
        os << "  enablement-refuted: " << report.enablementRefuted;
    os << "  after refutation: " << report.afterRefutation;
    // Same gating for the nullflow severity tallies (--no-nullflow).
    if (report.nullflowEnabled) {
        os << "  harmful: " << report.harmfulRaces
           << "  guarded: " << report.guardedRaces;
    }
    os << "  (thread-local accesses dropped: "
       << report.accessesDropped << ")\n";
    if (with_times) {
        os << "time: ";
        for (const StageTimeEntry &e : stageTimeEntries(report)) {
            if (!e.inText)
                continue;
            if (std::string_view(e.jsonName) == "totalCpu")
                continue; // rendered inside total's parens below
            if (std::string_view(e.jsonName) == "total") {
                os << "total " << e.seconds << "s (cpu "
                   << report.times.totalCpu << "s)\n";
            } else {
                os << e.textName << " " << e.seconds << "s, ";
            }
        }
    }
    int shown = 0;
    for (const auto &race : report.races) {
        if (race.refuted)
            continue;
        if (shown++ >= max_races) {
            os << "  ... (" << report.afterRefutation - max_races
               << " more)\n";
            break;
        }
        os << "  [p" << race.priority << "] " << race.description
           << "\n";
        // One severity tag per surviving pair, gated like the header
        // tallies so --no-nullflow output has no nullflow tokens.
        if (report.nullflowEnabled) {
            os << "      severity: "
               << analysis::nullVerdictName(race.severity);
            if (!race.severityChain.empty())
                os << "  (" << race.severityChain << ")";
            os << "\n";
        }
    }
    if (!report.useAfterDestroy.empty()) {
        os << "use-after-destroy: "
           << report.useAfterDestroy.size() << "\n";
        for (const auto &f : report.useAfterDestroy)
            os << "  [uad] " << f.toString() << "\n";
    }
    if (!report.deadlocks.empty()) {
        os << "deadlocks: " << report.deadlocks.size() << "\n";
        for (const auto &f : report.deadlocks)
            os << "  [dl] " << f.toString() << "\n";
    }
    return os.str();
}

} // namespace sierra
