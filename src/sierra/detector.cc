#include "detector.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>

#include "air/logging.hh"

namespace sierra {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
HarnessAnalysis::survivingRaceCount() const
{
    int n = 0;
    for (const auto &p : pairs) {
        if (!p.refuted)
            ++n;
    }
    return n;
}

SierraDetector::SierraDetector(framework::App &app) : _app(app)
{
    harness::HarnessGenerator gen(app);
    _plans = gen.generateAll();
}

const harness::HarnessPlan &
SierraDetector::planFor(const std::string &activity)
{
    for (const auto &plan : _plans) {
        if (plan.activityClass == activity)
            return plan;
    }
    fatal("no harness for activity ", activity);
}

HarnessAnalysis
SierraDetector::analyzeActivity(const std::string &activity,
                                const SierraOptions &options)
{
    const harness::HarnessPlan &plan = planFor(activity);
    HarnessAnalysis out;
    out.activity = activity;

    analysis::PointsToAnalysis pta(_app, plan, options.pta);
    out.pta = pta.run();

    hb::HbBuilder hb_builder(*out.pta, plan, _app, options.hb);
    out.shbg = hb_builder.build();

    out.accesses = race::extractAccesses(*out.pta);
    out.pairs = race::findRacyPairs(*out.pta, *out.shbg, out.accesses,
                                    options.racy);
    if (options.runRefutation) {
        out.refutation = symbolic::refuteRaces(
            *out.pta, out.accesses, out.pairs, options.refuter);
    }
    race::prioritize(*out.pta, out.accesses, out.pairs);
    return out;
}

AppReport
SierraDetector::analyze(const SierraOptions &options)
{
    AppReport report;
    report.app = _app.name();
    report.harnesses = static_cast<int>(_plans.size());

    // App-level dedup across harnesses: a race keyed by its two access
    // sites (method + instruction) and location key.
    struct Key {
        const air::Method *m1;
        int i1;
        const air::Method *m2;
        int i2;
        std::string key;
        bool
        operator<(const Key &o) const
        {
            if (m1 != o.m1)
                return m1 < o.m1;
            if (i1 != o.i1)
                return i1 < o.i1;
            if (m2 != o.m2)
                return m2 < o.m2;
            if (i2 != o.i2)
                return i2 < o.i2;
            return key < o.key;
        }
    };
    struct Agg {
        AppRace race;
        bool survivesSomewhere{false};
    };
    std::map<Key, Agg> dedup;

    int64_t max_pairs_total = 0;
    auto t_total = std::chrono::steady_clock::now();

    for (const auto &plan : _plans) {
        auto t0 = std::chrono::steady_clock::now();
        HarnessAnalysis ha;
        ha.activity = plan.activityClass;

        analysis::PointsToAnalysis pta(_app, plan, options.pta);
        ha.pta = pta.run();
        report.times.cgPa += secondsSince(t0);

        auto t1 = std::chrono::steady_clock::now();
        hb::HbBuilder hb_builder(*ha.pta, plan, _app, options.hb);
        ha.shbg = hb_builder.build();
        report.times.hbg += secondsSince(t1);

        auto t2 = std::chrono::steady_clock::now();
        ha.accesses = race::extractAccesses(*ha.pta);
        ha.pairs = race::findRacyPairs(*ha.pta, *ha.shbg, ha.accesses,
                                       options.racy);
        report.times.racy += secondsSince(t2);

        auto t3 = std::chrono::steady_clock::now();
        if (options.runRefutation) {
            ha.refutation = symbolic::refuteRaces(
                *ha.pta, ha.accesses, ha.pairs, options.refuter);
        }
        report.times.refutation += secondsSince(t3);
        race::prioritize(*ha.pta, ha.accesses, ha.pairs);

        report.actions += ha.numActions();
        report.hbEdges += ha.hbEdges();
        int n = ha.numActions();
        max_pairs_total += static_cast<int64_t>(n) * (n - 1) / 2;

        for (const auto &p : ha.pairs) {
            const race::Access &x = ha.accesses[p.access1];
            const race::Access &y = ha.accesses[p.access2];
            const air::Method *mx = ha.pta->cg.node(x.node).method;
            const air::Method *my = ha.pta->cg.node(y.node).method;
            Key key{std::min(mx, my),
                    mx <= my ? x.instrIdx : y.instrIdx,
                    std::max(mx, my),
                    mx <= my ? y.instrIdx : x.instrIdx, p.loc.key};
            // Same method: normalize instruction order too.
            if (mx == my && x.instrIdx > y.instrIdx)
                std::swap(key.i1, key.i2);
            Agg &agg = dedup[key];
            if (agg.race.description.empty()) {
                agg.race.description = p.toString(*ha.pta, ha.accesses);
                agg.race.priority = p.priority;
                agg.race.fieldKey = p.loc.key;
            }
            agg.race.activities.push_back(plan.activityClass);
            if (!p.refuted)
                agg.survivesSomewhere = true;
        }
        report.perHarness.push_back(std::move(ha));
    }

    report.racyPairs = static_cast<int>(dedup.size());
    for (auto &[key, agg] : dedup) {
        agg.race.refuted = !agg.survivesSomewhere;
        if (agg.survivesSomewhere)
            ++report.afterRefutation;
        report.races.push_back(std::move(agg.race));
    }
    std::sort(report.races.begin(), report.races.end(),
              [](const AppRace &a, const AppRace &b) {
                  if (a.refuted != b.refuted)
                      return !a.refuted;
                  if (a.priority != b.priority)
                      return a.priority > b.priority;
                  return a.description < b.description;
              });

    report.orderedPct =
        max_pairs_total > 0
            ? 100.0 * static_cast<double>(report.hbEdges) /
                  static_cast<double>(max_pairs_total)
            : 0.0;
    report.times.total = secondsSince(t_total);
    return report;
}

std::string
formatReport(const AppReport &report, int max_races)
{
    std::ostringstream os;
    os << "=== SIERRA report for " << report.app << " ===\n";
    os << "harnesses: " << report.harnesses
       << "  actions: " << report.actions
       << "  HB edges: " << report.hbEdges << " ("
       << static_cast<int>(report.orderedPct + 0.5) << "% ordered)\n";
    os << "racy pairs: " << report.racyPairs
       << "  after refutation: " << report.afterRefutation << "\n";
    os << "time: cg+pa " << report.times.cgPa << "s, hbg "
       << report.times.hbg << "s, refutation "
       << report.times.refutation << "s, total " << report.times.total
       << "s\n";
    int shown = 0;
    for (const auto &race : report.races) {
        if (race.refuted)
            continue;
        if (shown++ >= max_races) {
            os << "  ... (" << report.afterRefutation - max_races
               << " more)\n";
            break;
        }
        os << "  [p" << race.priority << "] " << race.description
           << "\n";
    }
    return os.str();
}

} // namespace sierra
