/**
 * @file
 * Serializable per-harness analysis artifacts: the reuse unit of
 * `sierra serve` and the store layer (docs/CACHING.md).
 *
 * A HarnessArtifact is the *merge-relevant* projection of one
 * HarnessAnalysis: exactly the fields the detector's deterministic
 * plan-order merge consumes when it folds harness results into an
 * AppReport. By construction, merging a loaded artifact produces the
 * same report bytes as merging the freshly computed analysis it was
 * made from -- that is the warm == cold byte-identity guarantee, and
 * incremental_test pins it over the whole golden corpus.
 *
 * The footprint is the artifact's validity certificate: the sorted
 * (qualified method name, content hash) pairs of every non-framework
 * method reachable in the harness's call graph. An artifact may be
 * reused only when every footprint entry still hashes the same --
 * a body edit to any method the harness could execute re-keys that
 * entry and forces a recompute (the soundness argument is written out
 * in docs/CACHING.md).
 */

#ifndef SIERRA_SIERRA_ARTIFACT_HH
#define SIERRA_SIERRA_ARTIFACT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/deadlock.hh"
#include "analysis/ifds.hh"
#include "analysis/nullflow.hh"

namespace sierra {

struct HarnessAnalysis;

/**
 * One deduplicatable race row. The site pair is pre-normalized
 * ((m1,i1) <= (m2,i2) lexicographically), matching the detector's
 * app-level dedup key exactly; the description is the rendered
 * `RacyPair::toString` of the pair that produced the row.
 */
struct ArtifactRace {
    std::string m1;  //!< qualified method of the first access site
    int i1{-1};      //!< its instruction index
    std::string m2;  //!< qualified method of the second access site
    int i2{-1};
    std::string key; //!< canonical location key (MemLoc::key)
    std::string description;
    int priority{0};
    bool refuted{false};
    //! null-value-flow verdict of the pair (Unknown with the stage off)
    analysis::NullVerdict severity{analysis::NullVerdict::Unknown};
    std::string severityChain; //!< its provenance (empty for Unknown)
};

/** The merge-relevant projection of one harness's analysis. */
struct HarnessArtifact {
    std::string activity;
    int actions{0};           //!< PointsToResult::numRealActions
    int64_t hbEdges{0};       //!< SHBG closure pairs
    int accessesTotal{0};
    int accessesDropped{0};
    int locksetRefuted{0};
    int enablementRefuted{0};
    std::vector<ArtifactRace> races; //!< in pair order
    std::vector<analysis::UseAfterDestroyFinding> useAfterDestroy;
    std::vector<analysis::DeadlockFinding> deadlocks;
    //! validity certificate: sorted (method, env hash) over the
    //! harness's reachable non-framework methods
    std::vector<std::pair<std::string, uint64_t>> footprint;
};

/** Project a computed analysis into its artifact (fills the footprint
 *  from the call graph). */
HarnessArtifact makeArtifact(const HarnessAnalysis &ha);

/** Deterministic text serialization (byte-stable across processes). */
std::string serializeArtifact(const HarnessArtifact &artifact);

/** Parse a serialized artifact; nullopt on malformed or
 *  version-mismatched input. */
std::optional<HarnessArtifact> parseArtifact(const std::string &blob);

} // namespace sierra

#endif // SIERRA_SIERRA_ARTIFACT_HH
