#include "artifact.hh"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "air/klass.hh"
#include "air/method.hh"
#include "analysis/store.hh"
#include "detector.hh"

namespace sierra {

namespace {

// v2: race rows carry the nullflow severity verdict + chain. The
// version is part of the first line, so v1 blobs fail parseArtifact
// and the store recomputes them (never a silently missing severity).
constexpr const char *kMagic = "harness-artifact v2";

/** Escape a field so it can live inside a tab-separated line. */
std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\t': out += "\\t"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
unesc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        ++i;
        switch (s[i]) {
          case 't': out += '\t'; break;
          case 'n': out += '\n'; break;
          default: out += s[i];
        }
    }
    return out;
}

/** Split a line on raw tabs (escaped tabs survive as "\\t"). */
std::vector<std::string>
fields(const std::string &line)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

bool
parseInt(const std::string &s, int64_t &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseHex64(const std::string &hex, uint64_t &out)
{
    if (hex.size() != 16)
        return false;
    uint64_t value = 0;
    for (char c : hex) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        value = (value << 4) | static_cast<uint64_t>(digit);
    }
    out = value;
    return true;
}

} // namespace

HarnessArtifact
makeArtifact(const HarnessAnalysis &ha)
{
    HarnessArtifact art;
    art.activity = ha.activity;
    art.actions = ha.numActions();
    art.hbEdges = ha.hbEdges();
    art.accessesTotal = ha.accessesTotal;
    art.accessesDropped = ha.accessesDropped;
    art.locksetRefuted = ha.locksetRefuted;
    art.enablementRefuted = ha.enablementRefuted;
    art.useAfterDestroy = ha.useAfterDestroy;
    art.deadlocks = ha.deadlocks;

    // Race rows: the same site normalization the app-level dedup key
    // applies, with the description rendered now so a reused artifact
    // reproduces the cold report's text exactly.
    for (const race::RacyPair &p : ha.pairs) {
        const race::Access &x = ha.accesses[p.access1];
        const race::Access &y = ha.accesses[p.access2];
        ArtifactRace r;
        r.m1 = ha.pta->cg.node(x.node).method->qualifiedName();
        r.i1 = x.instrIdx;
        r.m2 = ha.pta->cg.node(y.node).method->qualifiedName();
        r.i2 = y.instrIdx;
        if (std::tie(r.m2, r.i2) < std::tie(r.m1, r.i1)) {
            std::swap(r.m1, r.m2);
            std::swap(r.i1, r.i2);
        }
        r.key = p.loc.key.str();
        r.description = p.toString(*ha.pta, ha.accesses);
        r.priority = p.priority;
        r.refuted = p.refuted;
        r.severity = p.severity;
        r.severityChain = p.severityChain;
        art.races.push_back(std::move(r));
    }

    // Footprint: every distinct non-framework method with a body that
    // appears in the harness's call graph (under any context). A body
    // edit to any of them re-keys its entry and invalidates the
    // artifact; methods outside the footprint cannot affect it.
    std::map<std::string, uint64_t> fp;
    const analysis::CallGraph &cg = ha.pta->cg;
    for (int n = 0; n < cg.numNodes(); ++n) {
        const air::Method *m = cg.node(n).method;
        if (!m || !m->hasBody())
            continue;
        if (m->owner() && m->owner()->isFramework())
            continue;
        std::string name = m->qualifiedName();
        if (!fp.count(name))
            fp[name] = analysis::store::methodEnvHash(*m);
    }
    art.footprint.assign(fp.begin(), fp.end());
    return art;
}

std::string
serializeArtifact(const HarnessArtifact &a)
{
    std::ostringstream os;
    os << kMagic << "\n";
    os << "activity\t" << esc(a.activity) << "\n";
    os << "counts\t" << a.actions << "\t" << a.hbEdges << "\t"
       << a.accessesTotal << "\t" << a.accessesDropped << "\t"
       << a.locksetRefuted << "\t" << a.enablementRefuted << "\n";
    for (const ArtifactRace &r : a.races) {
        os << "race\t" << esc(r.m1) << "\t" << r.i1 << "\t"
           << esc(r.m2) << "\t" << r.i2 << "\t" << esc(r.key) << "\t"
           << r.priority << "\t" << (r.refuted ? 1 : 0) << "\t"
           << analysis::nullVerdictName(r.severity) << "\t"
           << esc(r.severityChain) << "\t"
           << esc(r.description) << "\n";
    }
    for (const analysis::UseAfterDestroyFinding &f : a.useAfterDestroy) {
        os << "uad\t" << esc(f.fieldKey) << "\t"
           << esc(f.teardownAction) << "\t" << esc(f.useAction) << "\t"
           << esc(f.writeMethod) << "\t" << esc(f.readMethod) << "\t"
           << f.writeInstr << "\t" << f.readInstr << "\n";
    }
    for (const analysis::DeadlockFinding &f : a.deadlocks) {
        os << "dl\t" << f.edges.size();
        for (const analysis::DeadlockEdge &e : f.edges) {
            os << "\t" << esc(e.heldLock) << "\t"
               << esc(e.acquiredLock) << "\t" << esc(e.method) << "\t"
               << e.instrIdx << "\t" << esc(e.actionLabel);
        }
        os << "\n";
    }
    for (const auto &[method, hash] : a.footprint) {
        os << "fp\t" << esc(method) << "\t"
           << analysis::store::hashHex(hash) << "\n";
    }
    return os.str();
}

std::optional<HarnessArtifact>
parseArtifact(const std::string &blob)
{
    std::istringstream in(blob);
    std::string line;
    if (!std::getline(in, line) || line != kMagic)
        return std::nullopt;

    HarnessArtifact a;
    bool saw_activity = false, saw_counts = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> f = fields(line);
        const std::string &tag = f[0];
        if (tag == "activity" && f.size() == 2) {
            a.activity = unesc(f[1]);
            saw_activity = true;
        } else if (tag == "counts" && f.size() == 7) {
            int64_t v[6];
            for (int i = 0; i < 6; ++i) {
                if (!parseInt(f[i + 1], v[i]))
                    return std::nullopt;
            }
            a.actions = static_cast<int>(v[0]);
            a.hbEdges = v[1];
            a.accessesTotal = static_cast<int>(v[2]);
            a.accessesDropped = static_cast<int>(v[3]);
            a.locksetRefuted = static_cast<int>(v[4]);
            a.enablementRefuted = static_cast<int>(v[5]);
            saw_counts = true;
        } else if (tag == "race" && f.size() == 11) {
            ArtifactRace r;
            int64_t i1, i2, prio, refuted;
            if (!parseInt(f[2], i1) || !parseInt(f[4], i2) ||
                !parseInt(f[6], prio) || !parseInt(f[7], refuted))
                return std::nullopt;
            if (!analysis::nullVerdictFromName(f[8], r.severity))
                return std::nullopt;
            r.m1 = unesc(f[1]);
            r.i1 = static_cast<int>(i1);
            r.m2 = unesc(f[3]);
            r.i2 = static_cast<int>(i2);
            r.key = unesc(f[5]);
            r.priority = static_cast<int>(prio);
            r.refuted = refuted != 0;
            r.severityChain = unesc(f[9]);
            r.description = unesc(f[10]);
            a.races.push_back(std::move(r));
        } else if (tag == "uad" && f.size() == 8) {
            analysis::UseAfterDestroyFinding u;
            int64_t wi, ri;
            if (!parseInt(f[6], wi) || !parseInt(f[7], ri))
                return std::nullopt;
            u.fieldKey = unesc(f[1]);
            u.teardownAction = unesc(f[2]);
            u.useAction = unesc(f[3]);
            u.writeMethod = unesc(f[4]);
            u.readMethod = unesc(f[5]);
            u.writeInstr = static_cast<int>(wi);
            u.readInstr = static_cast<int>(ri);
            a.useAfterDestroy.push_back(std::move(u));
        } else if (tag == "dl" && f.size() >= 2) {
            int64_t n;
            if (!parseInt(f[1], n) || n < 0 ||
                f.size() != static_cast<size_t>(2 + n * 5))
                return std::nullopt;
            analysis::DeadlockFinding d;
            for (int64_t i = 0; i < n; ++i) {
                size_t base = 2 + static_cast<size_t>(i) * 5;
                analysis::DeadlockEdge e;
                int64_t instr;
                if (!parseInt(f[base + 3], instr))
                    return std::nullopt;
                e.heldLock = unesc(f[base]);
                e.acquiredLock = unesc(f[base + 1]);
                e.method = unesc(f[base + 2]);
                e.instrIdx = static_cast<int>(instr);
                e.actionLabel = unesc(f[base + 4]);
                d.edges.push_back(std::move(e));
            }
            a.deadlocks.push_back(std::move(d));
        } else if (tag == "fp" && f.size() == 3) {
            uint64_t hash;
            if (!parseHex64(f[2], hash))
                return std::nullopt;
            a.footprint.emplace_back(unesc(f[1]), hash);
        } else {
            return std::nullopt;
        }
    }
    if (!saw_activity || !saw_counts)
        return std::nullopt;
    return a;
}

} // namespace sierra
