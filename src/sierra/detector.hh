/**
 * @file
 * The SIERRA pipeline (paper Fig. 3): harness generation -> call graph +
 * pointer analysis with action-sensitive contexts -> Static Happens-
 * Before Graph -> racy pairs -> symbolic refutation -> prioritized race
 * reports. This is the library's main public entry point.
 *
 * Harnesses are analyzed in parallel (one task per harness plan, see
 * the threading-model section of docs/INTERNALS.md): every task
 * produces a complete HarnessAnalysis from read-only shared state, and
 * the tasks are merged in plan order afterwards, so the report is
 * byte-identical at every jobs count.
 */

#ifndef SIERRA_SIERRA_DETECTOR_HH
#define SIERRA_SIERRA_DETECTOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/deadlock.hh"
#include "analysis/effects.hh"
#include "analysis/enablement.hh"
#include "analysis/ifds.hh"
#include "analysis/points_to.hh"
#include "artifact.hh"
#include "framework/app.hh"
#include "framework/icc.hh"
#include "harness/harness.hh"
#include "hb/rules.hh"
#include "race/racy.hh"
#include "symbolic/refuter.hh"
#include "util/metrics.hh"

namespace sierra {

/** All pipeline options in one place. */
struct SierraOptions {
    analysis::PointsToOptions pta;
    hb::HbOptions hb;
    race::RacyOptions racy;
    symbolic::RefuterOptions refuter;
    bool runRefutation{true};
    /**
     * The dataflow stage: compute method field-effect summaries
     * (analysis::FieldEffects) per harness and hand them to racy-pair
     * detection as a report-preserving conflict prefilter. Constant
     * facts inside the refuter are controlled separately by
     * `refuter.exec.useConstFacts`. Both default on; the ablation bench
     * measures their effect.
     */
    bool effectPrefilter{true};
    /**
     * The escape stage: classify abstract objects as thread-shared
     * (analysis::EscapeAnalysis) and drop accesses whose every base is
     * thread-local before the quadratic racy-pair loop. Time-only and
     * report-preserving (`--no-escape` ablates it).
     */
    bool escapeFilter{true};
    /**
     * The lock-set stage: compute must-held lock sets
     * (analysis::LockSetAnalysis) and refute pairs whose every action
     * pair involves a background thread and shares a common must-alias
     * lock, before symbolic refutation (`--no-lockset` ablates it).
     */
    bool locksetRefutation{true};
    /**
     * The enablement stage: registration typestate
     * (analysis::EnablementAnalysis) composed with SHBG reachability
     * to refute pairs whose callback is must-disabled at every point
     * the other action can run. Demand-driven: runs only over pairs
     * surviving lockset, between deadlock and IFDS (`--no-enablement`
     * ablates it; measured by bench_ablation_enablement).
     */
    bool enablement{true};
    /**
     * The IFDS stage: summary-based interprocedural constant facts
     * (analysis::InterConstants) handed to the symbolic refuter via
     * ExecutorOptions::inter, plus the use-after-destroy typestate
     * client. Report-preserving for true races — the facts are sound,
     * so they only refute more false positives (`--no-ifds` ablates
     * it; measured by bench_ablation_ifds).
     */
    bool ifds{true};
    /**
     * The deadlock stage: build the lock-dependency graph over the
     * lock-set results and report cyclic acquisitions reachable from
     * concurrently-runnable contexts (analysis::findDeadlocks). Purely
     * additive — it refutes nothing, it only fills the `deadlocks:`
     * report section (`--no-deadlock` ablates it).
     */
    bool deadlock{true};
    /**
     * The null-value-flow stage (analysis/nullflow): classify each
     * *surviving* pair as HARMFUL (the read can observe null/absent
     * state whose only non-null source is the racing write), GUARDED
     * (a dominating null check protects the sink) or UNKNOWN, and
     * severity-sort the report. Purely additive — it refutes nothing;
     * with the stage off every verdict is Unknown and the report is
     * byte-identical to today's (`--no-nullflow` ablates it; measured
     * by bench_ablation_nullflow).
     */
    bool nullflow{true};
    /**
     * ICC modeling (framework::IccModel): resolve explicit Intent
     * targets at startActivity/startService/sendBroadcast/PendingIntent
     * sites and extend each activity harness with the lifecycles of the
     * activities it launches, so cross-component races are reachable.
     * Consumed at harness-generation time, i.e. by the detector
     * *constructor* — pass the options to the two-argument constructor
     * to ablate it (`--no-icc`); flipping it at analyze() time has no
     * effect.
     */
    bool icc{true};
    /**
     * Worker threads for the whole pipeline: harness plans run as
     * parallel tasks, and leftover parallelism (jobs / plans) is
     * handed to each task's sharded refutation. 0 = the SIERRA_JOBS
     * environment variable, else hardware_concurrency; 1 = fully
     * serial. The report is identical at every value.
     */
    int jobs{0};
    /**
     * Optional metrics registry, filled during the deterministic merge
     * (counter catalog in docs/OBSERVABILITY.md). Not owned; null
     * disables the bookkeeping. Counters mirror report fields exactly
     * (e.g. `race.lockset_refuted` == AppReport::locksetRefuted) and
     * are identical at every jobs count.
     */
    util::metrics::Registry *metrics{nullptr};
};

/**
 * Per-stage timers (paper Table 4 columns), split into cpu-seconds and
 * wall-seconds so the numbers stay meaningful under parallelism: the
 * per-stage fields sum each task's own stage time, so they approximate
 * the serial (single-job) cost and are comparable across jobs counts;
 * `total` is the real elapsed wall time of the run, which is what
 * shrinks as jobs grow.
 */
struct StageTimes {
    double cgPa{0};       //!< call graph + pointer analysis (cpu-s)
    double hbg{0};        //!< SHBG construction (cpu-s)
    double dataflow{0};   //!< field-effect summaries (cpu-s)
    double escape{0};     //!< escape analysis + access filter (cpu-s)
    double racy{0};       //!< access extraction + racy pairs (cpu-s)
    double lockset{0};    //!< lock-set analysis + refutation (cpu-s)
    double deadlock{0};   //!< lock-dependency cycles (cpu-s)
    double enablement{0}; //!< registration typestate + refutation (cpu-s)
    double ifds{0};       //!< interprocedural summaries + UAD (cpu-s)
    /**
     * Symbolic refutation. Unlike the single-threaded stages above
     * (whose own wall time is their cpu time), refutation may fan out
     * across refuter workers inside one task; this field is the sum of
     * the workers' thread-CPU clocks (RefutationStats::cpuSeconds), so
     * worker CPU is accounted instead of being hidden behind the task
     * thread's elapsed time.
     */
    double refutation{0};
    //! null-value-flow severity classification (cpu-s)
    double nullflow{0};
    //! sum of all per-task stage times; equals the sum of the eleven
    //! stage fields (up to fp rounding) by construction, regardless of
    //! task completion order — the merge runs serially in plan order
    double totalCpu{0};
    double total{0}; //!< elapsed wall-clock of the whole run

    /** Fold another task's stage times in (associative, commutative
     *  component-wise sums; `total` is deliberately excluded — wall
     *  time is a property of the whole run, not of one task). */
    void
    add(const StageTimes &o)
    {
        cgPa += o.cgPa;
        hbg += o.hbg;
        dataflow += o.dataflow;
        escape += o.escape;
        racy += o.racy;
        lockset += o.lockset;
        deadlock += o.deadlock;
        enablement += o.enablement;
        ifds += o.ifds;
        refutation += o.refutation;
        nullflow += o.nullflow;
        totalCpu += o.totalCpu;
    }
};

/** The analysis artifacts of one harness (one activity). */
struct HarnessAnalysis {
    std::string activity;
    std::unique_ptr<analysis::PointsToResult> pta;
    std::unique_ptr<hb::Shbg> shbg;
    //! interprocedural constant facts (null when the stage is off)
    std::unique_ptr<analysis::InterConstants> inter;
    //! use-after-destroy findings (empty when the stage is off)
    std::vector<analysis::UseAfterDestroyFinding> useAfterDestroy;
    //! cyclic lock-acquisition findings (empty when the stage is off)
    std::vector<analysis::DeadlockFinding> deadlocks;
    analysis::DeadlockStats deadlockStats; //!< deadlock-stage work
    std::vector<race::Access> accesses;
    std::vector<race::RacyPair> pairs; //!< prioritized, refuted marked
    symbolic::RefutationStats refutation;
    race::RacyStats racyStats; //!< pair-loop work counters
    int accessesTotal{0};     //!< extracted accesses before filtering
    int accessesDropped{0};   //!< thread-local accesses escape removed
    int locksetRefuted{0};    //!< pairs refuted by the lock-set stage
    int enablementRefuted{0}; //!< pairs refuted by the enablement stage
    //! enablement-stage work counters (all zero when the stage is off)
    analysis::EnablementStats enablementStats;
    //! surviving pairs classified non-Unknown by the nullflow stage
    int nullflowClassified{0};
    //! nullflow-stage work counters (all zero when the stage is off)
    analysis::NullFlowStats nullflowStats;

    int numActions() const { return pta->numRealActions(); }
    int64_t hbEdges() const { return shbg->numClosurePairs(); }
    int racyPairCount() const { return static_cast<int>(pairs.size()); }
    int survivingRaceCount() const;
};

/** One deduplicated, app-level race report row. */
struct AppRace {
    std::string description;
    int priority{0};
    bool refuted{false};
    std::string fieldKey; //!< canonical location key (for scoring)
    //! which activities' harnesses exposed it
    std::vector<std::string> activities;
    //! null-value-flow severity (merged across harnesses: the
    //! highest-rank verdict of any surviving instance wins)
    analysis::NullVerdict severity{analysis::NullVerdict::Unknown};
    //! provenance chain of the winning verdict (empty for Unknown)
    std::string severityChain;
};

/** The aggregated result for one app (paper Table 3/4 rows). */
struct AppReport {
    std::string app;
    int harnesses{0};
    int actions{0};       //!< summed over harnesses (paper does too)
    int64_t hbEdges{0};   //!< summed closure pairs
    double orderedPct{0}; //!< aggregated ordered-pair percentage
    int racyPairs{0};     //!< deduplicated across harnesses
    int afterRefutation{0};
    int accessesDropped{0}; //!< summed thread-local accesses removed
    int locksetRefuted{0};  //!< summed pairs refuted by lock sets
    int enablementRefuted{0}; //!< summed pairs refuted by enablement
    //! whether the enablement stage ran (gates its report tokens, so
    //! --no-enablement output is byte-identical to the stage-less text)
    bool enablementEnabled{false};
    int harmfulRaces{0}; //!< surviving races classified HARMFUL
    int guardedRaces{0}; //!< surviving races classified GUARDED
    //! whether the nullflow stage ran (gates its report tokens, so
    //! --no-nullflow output is byte-identical to the stage-less text)
    bool nullflowEnabled{false};
    StageTimes times;
    std::vector<AppRace> races; //!< deduplicated, priority-ranked
    //! use-after-destroy findings, deduplicated across harnesses
    std::vector<analysis::UseAfterDestroyFinding> useAfterDestroy;
    //! deadlock findings, deduplicated across harnesses
    std::vector<analysis::DeadlockFinding> deadlocks;
    std::vector<HarnessAnalysis> perHarness;
};

/**
 * Stage-level reuse hooks for incremental re-analysis (`sierra serve`).
 *
 * When analyze() is given a HarnessReuse, it consults `tryLoad` for
 * each harness plan *before* the parallel fan-out; a hit skips the
 * whole pipeline for that plan and merges the loaded artifact instead.
 * Misses run normally and their freshly made artifact is offered to
 * `onComputed` for persistence. The merge consumes only artifact
 * fields either way, so a warm report is byte-identical to the cold
 * one by construction (incremental_test pins this; the caching rules
 * live in docs/CACHING.md).
 */
struct HarnessReuse {
    /** Return true and fill `out` to reuse a stored artifact for this
     *  plan. Called serially in plan order. */
    std::function<bool(const harness::HarnessPlan &, HarnessArtifact &)>
        tryLoad;
    /** Offered every freshly computed (plan, analysis, artifact)
     *  triple, serially in plan order, for persistence. */
    std::function<void(const harness::HarnessPlan &,
                       const HarnessAnalysis &, const HarnessArtifact &)>
        onComputed;
};

/**
 * The detector. Construction generates the per-activity harnesses into
 * the app's module (once); analyze() may be called repeatedly with
 * different options (e.g. to ablate the context policy). Options that
 * act at harness-generation time (SierraOptions::icc) are honored only
 * by the two-argument constructor.
 */
class SierraDetector
{
  public:
    explicit SierraDetector(framework::App &app);
    SierraDetector(framework::App &app, const SierraOptions &options);

    /** Run the full pipeline over every activity harness. */
    AppReport analyze(const SierraOptions &options = {});

    /** As above, with per-harness reuse hooks; `reuse` may be null
     *  (then identical to the plain overload). */
    AppReport analyze(const SierraOptions &options,
                      const HarnessReuse *reuse);

    /** Analyze a single activity's harness. */
    HarnessAnalysis analyzeActivity(const std::string &activity,
                                    const SierraOptions &options = {});

    const std::vector<harness::HarnessPlan> &plans() const
    {
        return _plans;
    }

    /** ICC scan counters (all zero when icc was off at construction). */
    const framework::IccStats &iccStats() const { return _iccStats; }

  private:
    const harness::HarnessPlan &planFor(const std::string &activity);

    /**
     * The pipeline stages for one harness plan — the single body
     * both analyzeActivity and (possibly many threads of) analyze run.
     * Reads only shared-immutable state (_app, the plan); everything
     * it produces is owned by the returned HarnessAnalysis. Stage
     * times accumulate into *times when non-null.
     */
    HarnessAnalysis runHarness(const harness::HarnessPlan &plan,
                               const SierraOptions &options,
                               StageTimes *times);

    framework::App &_app;
    std::vector<harness::HarnessPlan> _plans;
    framework::IccStats _iccStats;
};

/**
 * One row of the stage-time rendering. The text `time:` line and the
 * JSON `timesMs` object are both generated from stageTimeEntries(), so
 * a stage added to StageTimes cannot silently miss either output — a
 * static_assert in detector.cc ties the entry count to
 * sizeof(StageTimes), and report_times_test checks both renderings
 * cover every entry.
 */
struct StageTimeEntry {
    const char *jsonName; //!< key in the JSON `timesMs` object
    const char *textName; //!< token on the text `time:` line
    double seconds;       //!< the StageTimes field value
    //! rendered on the text line (gated stages drop out when off, so
    //! ablated output stays byte-identical; JSON always has all keys)
    bool inText;
};

/** Every StageTimes field exactly once, in render order. */
std::vector<StageTimeEntry> stageTimeEntries(const AppReport &report);

/**
 * Render an app report as human-readable text (ranked race list).
 * `with_times` includes the timing line; pass false to get output that
 * is reproducible across runs and jobs counts (the determinism tests
 * compare this form).
 */
std::string formatReport(const AppReport &report, int max_races = 50,
                         bool with_times = true);

} // namespace sierra

#endif // SIERRA_SIERRA_DETECTOR_HH
