/**
 * @file
 * Goal-directed backward symbolic execution (paper Section 5).
 *
 * A query asks: can action B run to completion and then action A run up
 * to the access alpha_A, along some feasible pair of paths? The executor
 * walks backward from alpha_A to A's entry -- descending into callees
 * (with frame-tagged registers and an explicit call stack) and crossing
 * from callee entries to callers within the action -- then backward
 * through B's body from its exits, applying weakest-precondition
 * substitutions. Strong updates to guard fields (e.g. "mIsRunning =
 * false") conflict with collected path constraints and prune paths; if
 * every path is pruned the ordering is infeasible.
 */

#ifndef SIERRA_SYMBOLIC_EXECUTOR_HH
#define SIERRA_SYMBOLIC_EXECUTOR_HH

#include <array>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/points_to.hh"
#include "constraint.hh"
#include "race/access.hh"

namespace sierra::analysis {
class InterConstants;
} // namespace sierra::analysis

namespace sierra::symbolic {

/** Result of one ordering query. */
enum class QueryVerdict {
    Feasible,   //!< a consistent path witnesses the ordering
    Infeasible, //!< all paths pruned: the ordering cannot happen
    Budget,     //!< path/step budget exhausted (treated as feasible)
};

const char *queryVerdictName(QueryVerdict v);

/** Executor tuning knobs. */
struct ExecutorOptions {
    int maxPaths{5000};   //!< terminated-path budget per query (paper's)
    int maxDepth{512};    //!< per-path backward step limit
    int maxSteps{200000}; //!< total state-expansion budget per query
    int maxCallDepth{8};  //!< descend limit; deeper calls are havocked
    /**
     * The paper's aggressive refuted-node cache (Section 5): nodes
     * visited by a refuted query prune later paths. It is unsound (it
     * ignores the constraint context), so it is off by default here and
     * measured by the cache ablation bench. A sound query-level memo is
     * always on.
     */
    bool useNodeCache{false};
    /**
     * Thread intraprocedural constant facts (analysis::MethodConstants)
     * into the walk: concretize otherwise-unknown register writes and
     * skip branch edges the constant fixpoint proved infeasible. Sound
     * -- facts hold for every invocation -- and deterministic, so it
     * only prunes work, never changes a Feasible verdict to Infeasible
     * incorrectly. Measured by bench_ablation_dataflow.
     */
    bool useConstFacts{true};
    /**
     * Interprocedural constant facts (analysis::InterConstants, the
     * IFDS stage). When set, the walk additionally concretizes values
     * the intraprocedural facts miss (setter parameters, callee
     * returns), prunes interprocedurally-infeasible pred edges, and --
     * the big lever -- replaces call-site havoc of must-write-constant
     * fields with strong constant updates, so guard clears hidden
     * behind deep setter chains still conflict with path constraints.
     * The object is read-only here and shared across refuter workers;
     * it must outlive the executor. Measured by bench_ablation_ifds.
     */
    const analysis::InterConstants *inter{nullptr};
};

/** Counters for the evaluation tables. */
struct ExecutorStats {
    int64_t queries{0};
    int64_t pathsExplored{0};
    int64_t statesExpanded{0};
    int64_t cacheHits{0};
    int64_t budgetExhausted{0};
    //! predecessor edges skipped via constant-infeasible branches
    int64_t constPruned{0};
    //! pred edges skipped only thanks to interprocedural facts
    int64_t interPruned{0};
    //! interprocedural concretizations (returns, must-write fields)
    int64_t interApplied{0};

    /**
     * Fold another executor's counters in. Plain component-wise sums,
     * so the merge is associative and commutative: sharded refutation
     * can combine per-worker stats in any grouping and get the same
     * totals. (cacheHits still depends on which queries shared an
     * executor's memo, so it may differ *across* jobs counts.)
     */
    void
    merge(const ExecutorStats &o)
    {
        queries += o.queries;
        pathsExplored += o.pathsExplored;
        statesExpanded += o.statesExpanded;
        cacheHits += o.cacheHits;
        budgetExhausted += o.budgetExhausted;
        constPruned += o.constPruned;
        interPruned += o.interPruned;
        interApplied += o.interApplied;
    }
};

/**
 * A refuted-node cache shareable between concurrently running
 * executors (paper Section 5 "Caching", here under sharded
 * refutation). Lock-striped: membership tests and bulk inserts lock
 * only the stripe a node hashes to, so parallel workers rarely
 * contend but still see each other's refutations promptly.
 */
class RefutedNodeCache
{
  public:
    bool
    contains(analysis::NodeId n) const
    {
        const Stripe &s = stripeFor(n);
        std::lock_guard<std::mutex> lock(s.mutex);
        return s.nodes.count(n) > 0;
    }

    template <typename Container>
    void
    insertAll(const Container &nodes)
    {
        for (analysis::NodeId n : nodes) {
            Stripe &s = stripeFor(n);
            std::lock_guard<std::mutex> lock(s.mutex);
            s.nodes.insert(n);
        }
    }

    size_t
    size() const
    {
        size_t total = 0;
        for (const Stripe &s : _stripes) {
            std::lock_guard<std::mutex> lock(s.mutex);
            total += s.nodes.size();
        }
        return total;
    }

  private:
    static constexpr size_t kStripes = 16;

    struct Stripe {
        mutable std::mutex mutex;
        std::unordered_set<analysis::NodeId> nodes;
    };

    const Stripe &
    stripeFor(analysis::NodeId n) const
    {
        return _stripes[static_cast<size_t>(n) % kStripes];
    }
    Stripe &
    stripeFor(analysis::NodeId n)
    {
        return _stripes[static_cast<size_t>(n) % kStripes];
    }

    std::array<Stripe, kStripes> _stripes;
};

/**
 * Backward symbolic executor over one pointer-analysis result. The
 * refuted-node cache persists across queries (by design, see paper).
 *
 * An executor is single-threaded; parallel refutation runs one
 * executor per worker. Passing a `shared_cache` lets those workers
 * pool their refuted nodes (only consulted when
 * `options.useNodeCache` is set); with no shared cache the executor
 * owns a private one.
 */
class BackwardExecutor
{
  public:
    BackwardExecutor(const analysis::PointsToResult &result,
                     ExecutorOptions options = {},
                     RefutedNodeCache *shared_cache = nullptr);

    /**
     * Is the ordering "B completes, then A runs and reaches `access`"
     * feasible? `access` must be executable under action_a.
     */
    QueryVerdict orderFeasible(const race::Access &access, int action_a,
                               int action_b);

    const ExecutorStats &stats() const { return _stats; }

  private:
    //! frame-tagged register keys: frame f, register r -> f*stride + r
    static constexpr int kFrameStride = 1 << 16;

    struct Frame {
        analysis::NodeId node{-1};
        int instr{0}; //!< caller position to resume at
        int frame{0}; //!< caller's register-frame id
    };

    struct PathState {
        int phase{0}; //!< 0 = inside A, 1 = inside B
        analysis::NodeId node{-1};
        int instr{0};
        bool skipEffect{false};
        int depth{0};
        int frame{0};
        int nextFrame{1};
        std::vector<Frame> callStack;
        ConstraintStore store;
    };

    static int
    regKey(int frame, int reg)
    {
        return frame * kFrameStride + reg;
    }

    const analysis::Cfg &cfgOf(const air::Method *m);

    /** Lazily computed per-method constant facts (useConstFacts). */
    const analysis::MethodConstants &factsOf(const air::Method *m);

    /** Keys of fields possibly written by a node (transitively); used
     *  to havoc calls beyond the descend limit. */
    const std::vector<analysis::FieldKey> &
    mayWriteKeys(analysis::NodeId n);

    /** Apply instruction backward transfer (non-invoke); false=prune. */
    bool transfer(PathState &st, const air::Instruction &instr);

    /** Handle an invoke backward: descend into callees or havoc. Pushes
     *  successor states; returns false when the state was fully handled
     *  by descent (so the caller must not continue this state). */
    bool handleInvoke(PathState &st, const air::Instruction &instr,
                      std::vector<PathState> &stack);

    /** Handle reaching instruction 0 of a method. Returns true when the
     *  whole query is feasible. */
    bool atEntry(PathState st, int action_a, int action_b,
                 std::vector<PathState> &stack);

    /** Rename callee frame registers to the caller's argument registers
     *  at a frame boundary. */
    bool bindFrame(ConstraintStore &store, const air::Method *callee,
                   int callee_frame, const air::Instruction &call,
                   int caller_frame);

    bool startPhaseB(const PathState &st, int action_b,
                     std::vector<PathState> &stack);

    bool resolveLoc(analysis::NodeId n, int reg,
                    const air::FieldRef &field, race::MemLoc &out) const;

    const analysis::PointsToResult &_r;
    ExecutorOptions _opts;
    ExecutorStats _stats;

    std::unordered_map<const air::Method *,
                       std::unique_ptr<analysis::Cfg>>
        _cfgs;
    std::unordered_map<const air::Method *,
                       std::unique_ptr<analysis::MethodConstants>>
        _constFacts;
    std::unordered_map<analysis::NodeId,
                       std::vector<analysis::FieldKey>>
        _mayWrite;
    std::set<analysis::NodeId> _mayWriteInProgress;
    //! refuted-query node cache (paper Section 5 "Caching"); points at
    //! _ownedCache unless a shared cache was injected
    RefutedNodeCache *_nodeCache;
    std::unique_ptr<RefutedNodeCache> _ownedCache;
    //! nodes visited by the current query's phase-A walk
    std::set<analysis::NodeId> _queryVisited;
    //! sound memoization of whole queries
    std::map<std::tuple<analysis::SiteId, int, int>, QueryVerdict>
        _queryMemo;
};

} // namespace sierra::symbolic

#endif // SIERRA_SYMBOLIC_EXECUTOR_HH
