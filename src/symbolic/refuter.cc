#include "refuter.hh"

#include <algorithm>

#include "util/metrics.hh"
#include "util/thread_pool.hh"
#include "util/trace.hh"

namespace sierra::symbolic {

namespace {

/** Decide one racy pair with the given executor; updates the verdict
 *  counters. This is the whole per-pair refutation, shared by the
 *  serial and the sharded path. */
void
refutePair(BackwardExecutor &exec,
           const std::vector<race::Access> &accesses,
           race::RacyPair &pair, const RefuterOptions &options,
           RefutationStats &stats)
{
    if (pair.refuted)
        return; // already refuted by an earlier (lock-set) stage
    bool any_survives = false;
    bool any_budget = false;
    int tried = 0;
    for (const auto &entry : pair.actionPairs) {
        if (tried++ >= options.maxActionPairsPerRace) {
            // Untried pairs are conservatively assumed to survive.
            any_survives = true;
            break;
        }
        QueryVerdict d1 = exec.orderFeasible(
            accesses[entry.access1], entry.action1, entry.action2);
        if (d1 == QueryVerdict::Infeasible)
            continue;
        QueryVerdict d2 = exec.orderFeasible(
            accesses[entry.access2], entry.action2, entry.action1);
        if (d2 == QueryVerdict::Infeasible)
            continue;
        any_survives = true;
        if (d1 == QueryVerdict::Budget || d2 == QueryVerdict::Budget)
            any_budget = true;
        break; // one surviving ordering pair keeps the report
    }
    pair.refuted = !any_survives;
    if (pair.refuted)
        pair.refutedBy = race::RefutedBy::Symbolic;
    pair.refutationTimedOut = any_budget;
    if (pair.refuted) {
        ++stats.refuted;
        SIERRA_TRACE_INSTANT("refutation", "pair refuted",
                             util::trace::arg("by", "symbolic"));
    } else {
        ++stats.survived;
    }
    if (any_budget)
        ++stats.timedOut;
}

} // namespace

RefutationStats
refuteRaces(const analysis::PointsToResult &result,
            const std::vector<race::Access> &accesses,
            std::vector<race::RacyPair> &pairs,
            const RefuterOptions &options)
{
    int jobs = util::resolveJobs(options.jobs);
    jobs = std::min<int>(jobs, static_cast<int>(pairs.size()));

    if (jobs <= 1) {
        RefutationStats stats;
        double cpu0 = util::metrics::threadCpuSeconds();
        BackwardExecutor exec(result, options.exec);
        for (race::RacyPair &pair : pairs)
            refutePair(exec, accesses, pair, options, stats);
        stats.cpuSeconds = util::metrics::threadCpuSeconds() - cpu0;
        stats.exec = exec.stats();
        return stats;
    }

    // Shard pairs round-robin over per-worker executors. Workers write
    // disjoint pairs; the shared node cache is the only cross-worker
    // state (and only when enabled).
    RefutedNodeCache shared_cache;
    std::vector<RefutationStats> worker_stats(
        static_cast<size_t>(jobs));
    util::parallelFor(jobs, jobs, [&](int w) {
        SIERRA_TRACE_SPAN(span, "worker", "refute.shard",
                          util::trace::arg("shard",
                                           std::to_string(w)));
        // Each worker meters its own thread-CPU so the merged
        // cpuSeconds is the true CPU of the stage, not the task
        // thread's wall time over a concurrent fan-out.
        double cpu0 = util::metrics::threadCpuSeconds();
        BackwardExecutor exec(result, options.exec, &shared_cache);
        RefutationStats &stats = worker_stats[w];
        for (size_t i = static_cast<size_t>(w); i < pairs.size();
             i += static_cast<size_t>(jobs)) {
            refutePair(exec, accesses, pairs[i], options, stats);
        }
        stats.cpuSeconds = util::metrics::threadCpuSeconds() - cpu0;
        stats.exec = exec.stats();
    });

    // Deterministic merge in worker order (associative sums, so any
    // order would do; worker order keeps it obviously reproducible).
    RefutationStats stats;
    for (const RefutationStats &ws : worker_stats)
        stats.merge(ws);
    return stats;
}

} // namespace sierra::symbolic
