#include "refuter.hh"

namespace sierra::symbolic {

RefutationStats
refuteRaces(const analysis::PointsToResult &result,
            const std::vector<race::Access> &accesses,
            std::vector<race::RacyPair> &pairs,
            const RefuterOptions &options)
{
    RefutationStats stats;
    BackwardExecutor exec(result, options.exec);

    for (race::RacyPair &pair : pairs) {
        bool any_survives = false;
        bool any_budget = false;
        int tried = 0;
        for (const auto &entry : pair.actionPairs) {
            if (tried++ >= options.maxActionPairsPerRace) {
                // Untried pairs are conservatively assumed to survive.
                any_survives = true;
                break;
            }
            QueryVerdict d1 = exec.orderFeasible(
                accesses[entry.access1], entry.action1, entry.action2);
            if (d1 == QueryVerdict::Infeasible)
                continue;
            QueryVerdict d2 = exec.orderFeasible(
                accesses[entry.access2], entry.action2, entry.action1);
            if (d2 == QueryVerdict::Infeasible)
                continue;
            any_survives = true;
            if (d1 == QueryVerdict::Budget ||
                d2 == QueryVerdict::Budget) {
                any_budget = true;
            }
            break; // one surviving ordering pair keeps the report
        }
        pair.refuted = !any_survives;
        pair.refutationTimedOut = any_budget;
        if (pair.refuted)
            ++stats.refuted;
        else
            ++stats.survived;
        if (any_budget)
            ++stats.timedOut;
    }
    stats.exec = exec.stats();
    return stats;
}

} // namespace sierra::symbolic
