#include "executor.hh"

#include "air/logging.hh"
#include "analysis/ifds.hh"

namespace sierra::symbolic {

using air::CondKind;
using air::Instruction;
using air::Opcode;
using analysis::NodeId;
using race::MemLoc;

const char *
queryVerdictName(QueryVerdict v)
{
    switch (v) {
      case QueryVerdict::Feasible: return "feasible";
      case QueryVerdict::Infeasible: return "infeasible";
      case QueryVerdict::Budget: return "budget";
    }
    panic("unreachable verdict");
}

BackwardExecutor::BackwardExecutor(const analysis::PointsToResult &result,
                                   ExecutorOptions options,
                                   RefutedNodeCache *shared_cache)
    : _r(result), _opts(options), _nodeCache(shared_cache)
{
    if (!_nodeCache) {
        _ownedCache = std::make_unique<RefutedNodeCache>();
        _nodeCache = _ownedCache.get();
    }
}

const analysis::Cfg &
BackwardExecutor::cfgOf(const air::Method *m)
{
    auto it = _cfgs.find(m);
    if (it != _cfgs.end())
        return *it->second;
    auto cfg = std::make_unique<analysis::Cfg>(*m);
    const analysis::Cfg &ref = *cfg;
    _cfgs.emplace(m, std::move(cfg));
    return ref;
}

const analysis::MethodConstants &
BackwardExecutor::factsOf(const air::Method *m)
{
    auto it = _constFacts.find(m);
    if (it != _constFacts.end())
        return *it->second;
    auto facts = std::make_unique<analysis::MethodConstants>(cfgOf(m));
    const analysis::MethodConstants &ref = *facts;
    _constFacts.emplace(m, std::move(facts));
    return ref;
}

const std::vector<analysis::FieldKey> &
BackwardExecutor::mayWriteKeys(NodeId n)
{
    auto it = _mayWrite.find(n);
    if (it != _mayWrite.end())
        return it->second;
    static const std::vector<analysis::FieldKey> empty;
    if (!_mayWriteInProgress.insert(n).second)
        return empty;

    // Set ordered by interned id; havoc (dropLocsByKey) is
    // order-insensitive, so id order is as good as lexicographic.
    std::set<analysis::FieldKey> keys;
    const air::Method *m = _r.cg.node(n).method;
    if (m->hasBody()) {
        for (int i = 0; i < m->numInstrs(); ++i) {
            const Instruction &instr = m->instr(i);
            switch (instr.op) {
              case Opcode::PutField:
                for (analysis::ObjId o :
                     _r.pointsTo(n, instr.srcs[0])) {
                    keys.insert(_r.fieldKey(o, instr.field));
                }
                keys.insert(_r.internKey(instr.field.className + "." +
                                         instr.field.fieldName));
                break;
              case Opcode::PutStatic:
                keys.insert(_r.staticKey(instr.field));
                break;
              case Opcode::ArrayPut:
                for (analysis::ObjId o :
                     _r.pointsTo(n, instr.srcs[0])) {
                    keys.insert(_r.internKey(
                        _r.objects.get(o).klassName + ".$elems",
                        analysis::FieldKey::kArray |
                            analysis::FieldKey::kWildcard));
                }
                break;
              default:
                break;
            }
        }
        for (const auto &edge : _r.cg.edgesOf(n)) {
            for (const analysis::FieldKey &k : mayWriteKeys(edge.callee))
                keys.insert(k);
        }
    }
    _mayWriteInProgress.erase(n);
    auto [ins, inserted] = _mayWrite.emplace(
        n,
        std::vector<analysis::FieldKey>(keys.begin(), keys.end()));
    (void)inserted;
    return ins->second;
}

bool
BackwardExecutor::resolveLoc(NodeId n, int reg,
                             const air::FieldRef &field,
                             MemLoc &out) const
{
    const auto &pts = _r.pointsTo(n, reg);
    if (pts.size() != 1)
        return false;
    out.isStatic = false;
    out.obj = *pts.begin();
    out.key = _r.fieldKey(out.obj, field);
    return true;
}

bool
BackwardExecutor::transfer(PathState &st, const Instruction &instr)
{
    ConstraintStore &store = st.store;
    const int f = st.frame;
    switch (instr.op) {
      case Opcode::ConstInt:
        return store.substituteReg(regKey(f, instr.dst),
                                   Operand::constant(instr.intValue));
      case Opcode::ConstNull:
        return store.substituteReg(regKey(f, instr.dst),
                                   Operand::constant(0));
      case Opcode::ConstStr:
      case Opcode::BinOp:
      case Opcode::UnOp: {
        // Arithmetic results are opaque to the WP transfer, but the
        // constant fixpoint may know the value holds on every run.
        if (_opts.useConstFacts) {
            const air::Method *m = _r.cg.node(st.node).method;
            analysis::ConstVal v =
                factsOf(m).after(st.instr, instr.dst);
            if (v.isConst()) {
                return store.substituteReg(regKey(f, instr.dst),
                                           Operand::constant(v.value));
            }
        }
        if (_opts.inter) {
            // Second chance: the interprocedural facts may pin a value
            // the intraprocedural solve left Top (setter parameters).
            const air::Method *m = _r.cg.node(st.node).method;
            analysis::ConstVal v =
                _opts.inter->after(m, st.instr, instr.dst);
            if (v.isConst()) {
                ++_stats.interApplied;
                return store.substituteReg(regKey(f, instr.dst),
                                           Operand::constant(v.value));
            }
        }
        return store.substituteReg(regKey(f, instr.dst),
                                   Operand::unknown());
      }
      case Opcode::New:
      case Opcode::NewArray:
        // Fresh allocations are non-null; 1 satisfies != null checks
        // and conflicts with == null checks.
        return store.substituteReg(regKey(f, instr.dst),
                                   Operand::constant(1));
      case Opcode::Move:
        return store.substituteReg(
            regKey(f, instr.dst),
            Operand::regOp(regKey(f, instr.srcs[0])));
      case Opcode::GetField: {
        MemLoc loc;
        if (resolveLoc(st.node, instr.srcs[0], instr.field, loc)) {
            return store.substituteReg(regKey(f, instr.dst),
                                       Operand::locOp(loc));
        }
        return store.substituteReg(regKey(f, instr.dst),
                                   Operand::unknown());
      }
      case Opcode::PutField: {
        MemLoc loc;
        if (resolveLoc(st.node, instr.srcs[0], instr.field, loc)) {
            // Strong update.
            return store.substituteLoc(
                loc, Operand::regOp(regKey(f, instr.srcs[1])));
        }
        // Ambiguous base: weak update, havoc by key.
        store.dropLocsByKey({_r.internKey(instr.field.className + "." +
                                          instr.field.fieldName)});
        for (analysis::ObjId o : _r.pointsTo(st.node, instr.srcs[0]))
            store.dropLocsByKey({_r.fieldKey(o, instr.field)});
        return !store.failed();
      }
      case Opcode::GetStatic: {
        MemLoc loc;
        loc.isStatic = true;
        loc.key = _r.staticKey(instr.field);
        return store.substituteReg(regKey(f, instr.dst),
                                   Operand::locOp(loc));
      }
      case Opcode::PutStatic: {
        MemLoc loc;
        loc.isStatic = true;
        loc.key = _r.staticKey(instr.field);
        return store.substituteLoc(
            loc, Operand::regOp(regKey(f, instr.srcs[0])));
      }
      case Opcode::ArrayGet:
        return store.substituteReg(regKey(f, instr.dst),
                                   Operand::unknown());
      case Opcode::ArrayPut:
        for (analysis::ObjId o : _r.pointsTo(st.node, instr.srcs[0])) {
            store.dropLocsByKey({_r.internKey(
                _r.objects.get(o).klassName + ".$elems",
                analysis::FieldKey::kArray |
                    analysis::FieldKey::kWildcard)});
        }
        return !store.failed();
      default:
        return !store.failed();
    }
}

bool
BackwardExecutor::bindFrame(ConstraintStore &store,
                            const air::Method *callee, int callee_frame,
                            const Instruction &call, int caller_frame)
{
    // Frame-distinct register keys make the renames collision-free.
    int frame_regs = callee->firstTempReg();
    store.dropRegsInRange(regKey(callee_frame, frame_regs),
                          regKey(callee_frame + 1, 0));
    for (int r = 0; r < frame_regs; ++r) {
        Operand value =
            static_cast<size_t>(r) < call.srcs.size()
                ? Operand::regOp(regKey(caller_frame, call.srcs[r]))
                : Operand::unknown();
        if (!store.substituteReg(regKey(callee_frame, r), value))
            return false;
    }
    return !store.failed();
}

bool
BackwardExecutor::handleInvoke(PathState &st, const Instruction &instr,
                               std::vector<PathState> &stack)
{
    // Callees of this site within the current phase's walk.
    analysis::SiteId site =
        _r.sites.find(_r.cg.node(st.node).method, st.instr);
    std::vector<NodeId> callees;
    for (const auto &edge : _r.cg.edgesOf(st.node)) {
        if (edge.site == site &&
            _r.cg.node(edge.callee).method->hasBody()) {
            callees.push_back(edge.callee);
        }
    }

    if (callees.empty() ||
        static_cast<int>(st.callStack.size()) >= _opts.maxCallDepth) {
        // Havoc: unknown return value, drop what callees may write.
        // The interprocedural summaries can do better on both counts:
        // a constant return concretizes the destination, and fields
        // every callee must-writes with a known constant get a strong
        // update -- which may conflict with collected constraints and
        // prune the path -- instead of being dropped.
        if (instr.dst >= 0) {
            Operand ret = Operand::unknown();
            if (_opts.inter && !callees.empty()) {
                analysis::ConstVal acc; // Bottom
                for (NodeId c : callees) {
                    analysis::ConstVal rc = _opts.inter->returnConst(
                        _r.cg.node(c).method);
                    if (acc.state ==
                        analysis::ConstVal::State::Bottom) {
                        acc = rc;
                    } else if (rc.state !=
                                   analysis::ConstVal::State::Bottom &&
                               !(acc.isConst() && rc.isConst() &&
                                 acc.value == rc.value)) {
                        acc.state = analysis::ConstVal::State::Top;
                    }
                }
                if (acc.isConst()) {
                    ++_stats.interApplied;
                    ret = Operand::constant(acc.value);
                }
            }
            if (!st.store.substituteReg(regKey(st.frame, instr.dst),
                                        ret)) {
                return false;
            }
        }
        // Must-write facts agreed on by every possible callee (a
        // virtual call runs exactly one of them, so only the
        // intersection is a strong update).
        std::set<analysis::FieldKey> keep;
        if (_opts.inter && !callees.empty()) {
            std::map<MemLoc, std::pair<int64_t, bool>> agreed;
            bool first = true;
            for (NodeId c : callees) {
                const air::Method *cm = _r.cg.node(c).method;
                std::map<MemLoc, std::pair<int64_t, bool>> cur;
                for (const auto &mw : _opts.inter->mustWrites(cm)) {
                    MemLoc loc;
                    if (mw.isStatic) {
                        loc.isStatic = true;
                        loc.key = _r.staticKey(mw.field);
                    } else {
                        // Instance facts are writes through the
                        // callee's `this`: usable only when that
                        // resolves to a single abstract object.
                        const auto &pts = _r.pointsTo(c, 0);
                        if (pts.size() != 1)
                            continue;
                        loc.obj = *pts.begin();
                        loc.key = _r.fieldKey(loc.obj, mw.field);
                    }
                    cur.emplace(loc,
                                std::make_pair(mw.value,
                                               mw.exclusive));
                }
                if (first) {
                    agreed = std::move(cur);
                    first = false;
                } else {
                    for (auto it = agreed.begin();
                         it != agreed.end();) {
                        auto jt = cur.find(it->first);
                        if (jt == cur.end() ||
                            jt->second.first != it->second.first) {
                            it = agreed.erase(it);
                        } else {
                            it->second.second &= jt->second.second;
                            ++it;
                        }
                    }
                }
            }
            for (const auto &[loc, v] : agreed) {
                ++_stats.interApplied;
                if (!st.store.substituteLoc(
                        loc, Operand::constant(v.first))) {
                    return false; // conflicts: path infeasible
                }
                // `exclusive` facts cover every write the callee can
                // make to this key, so nothing is left to havoc.
                if (v.second)
                    keep.insert(loc.key);
            }
        }
        for (NodeId c : callees) {
            if (keep.empty()) {
                st.store.dropLocsByKey(mayWriteKeys(c));
                continue;
            }
            std::vector<analysis::FieldKey> drop;
            for (const analysis::FieldKey &k : mayWriteKeys(c)) {
                if (!keep.count(k))
                    drop.push_back(k);
            }
            st.store.dropLocsByKey(drop);
        }
        return !st.store.failed();
    }

    // Descend: continue backward from each callee exit; resume at this
    // call site when the callee's entry is reached.
    for (NodeId c : callees) {
        const air::Method *cm = _r.cg.node(c).method;
        for (int e = 0; e < cm->numInstrs(); ++e) {
            const Instruction &exit_instr = cm->instr(e);
            if (exit_instr.op != Opcode::Return &&
                exit_instr.op != Opcode::ReturnVoid &&
                exit_instr.op != Opcode::Throw) {
                continue;
            }
            PathState next = st;
            next.node = c;
            next.instr = e;
            next.skipEffect = true;
            next.depth = st.depth + 1;
            next.frame = st.nextFrame++;
            next.nextFrame = st.nextFrame;
            next.callStack.push_back({st.node, st.instr, st.frame});
            // The call's destination register holds the return value.
            if (instr.dst >= 0) {
                Operand ret =
                    exit_instr.op == Opcode::Return
                        ? Operand::regOp(
                              regKey(next.frame, exit_instr.srcs[0]))
                        : Operand::unknown();
                if (!next.store.substituteReg(
                        regKey(st.frame, instr.dst), ret)) {
                    continue;
                }
            }
            stack.push_back(std::move(next));
        }
    }
    return false; // state replaced by descent states
}

bool
BackwardExecutor::startPhaseB(const PathState &st, int action_b,
                              std::vector<PathState> &stack)
{
    const analysis::Action &b = _r.actions.get(action_b);
    if (b.entryNode < 0) {
        // B has no analyzable body: it cannot conflict with the
        // constraints, so the ordering is feasible if the store is.
        return st.store.consistent();
    }
    const air::Method *bm = _r.cg.node(b.entryNode).method;
    for (int i = 0; i < bm->numInstrs(); ++i) {
        const Instruction &instr = bm->instr(i);
        if (instr.op == Opcode::Return ||
            instr.op == Opcode::ReturnVoid ||
            instr.op == Opcode::Throw) {
            PathState next;
            next.phase = 1;
            next.node = b.entryNode;
            next.instr = i;
            next.skipEffect = true;
            next.depth = st.depth + 1;
            next.frame = 0;
            next.nextFrame = 1;
            next.store = st.store;
            stack.push_back(std::move(next));
        }
    }
    return false;
}

bool
BackwardExecutor::atEntry(PathState st, int action_a, int action_b,
                          std::vector<PathState> &stack)
{
    const air::Method *m = _r.cg.node(st.node).method;

    // Returning from a descended call: resume in the caller.
    if (!st.callStack.empty()) {
        Frame caller = st.callStack.back();
        st.callStack.pop_back();
        const air::Method *cm = _r.cg.node(caller.node).method;
        const Instruction &call = cm->instr(caller.instr);
        if (!bindFrame(st.store, m, st.frame, call, caller.frame))
            return false;
        st.node = caller.node;
        st.instr = caller.instr;
        st.frame = caller.frame;
        st.skipEffect = true;
        st.depth += 1;
        stack.push_back(std::move(st));
        return false;
    }

    const analysis::Action &phase_action =
        _r.actions.get(st.phase == 0 ? action_a : action_b);

    if (st.node != phase_action.entryNode) {
        // Cross upward to callers within the same action.
        for (NodeId caller : _r.cg.callersOf(st.node)) {
            if (!_r.cg.actionsOf(caller).count(phase_action.id))
                continue;
            const air::Method *cm = _r.cg.node(caller).method;
            for (const auto &edge : _r.cg.edgesOf(caller)) {
                if (edge.callee != st.node)
                    continue;
                int call_instr = _r.sites.instrOf(edge.site);
                const Instruction &call = cm->instr(call_instr);
                PathState next = st;
                next.node = caller;
                next.instr = call_instr;
                next.skipEffect = true;
                next.depth = st.depth + 1;
                next.frame = st.nextFrame++;
                next.nextFrame = st.nextFrame;
                // Callee frame regs become caller argument regs; note
                // the roles: st.frame is the callee frame here.
                if (!bindFrame(next.store, m, st.frame, call,
                               next.frame)) {
                    continue;
                }
                stack.push_back(std::move(next));
            }
        }
        return false;
    }

    // Reached the action's entry: apply message-what facts and drop the
    // remaining register atoms (parameters are unconstrained inputs).
    if (phase_action.messageWhat >= 0) {
        // Restrict the substitution to the handled message's abstract
        // objects (the handleMessage parameter); other Message objects
        // in scope keep their symbolic `what`.
        std::set<int> msg_objs;
        if (phase_action.entryNode >= 0) {
            const air::Method *em =
                _r.cg.node(phase_action.entryNode).method;
            if (em->numParams() >= 1) {
                for (analysis::ObjId o : _r.pointsTo(
                         phase_action.entryNode, em->paramReg(0))) {
                    msg_objs.insert(o);
                }
            }
        }
        if (!st.store.substituteKeyWithConst(
                _r.internKey("android.os.Message.what"),
                phase_action.messageWhat, msg_objs)) {
            return false;
        }
    }
    st.store.dropRegAtoms();
    if (!st.store.consistent())
        return false;

    if (st.phase == 0)
        return startPhaseB(st, action_b, stack);
    return true; // phase B entry with a consistent store: feasible
}

QueryVerdict
BackwardExecutor::orderFeasible(const race::Access &access, int action_a,
                                int action_b)
{
    ++_stats.queries;
    _queryVisited.clear();

    const analysis::Action &a = _r.actions.get(action_a);
    if (a.entryNode < 0)
        return QueryVerdict::Feasible;

    auto memo_key = std::make_tuple(access.site, action_a, action_b);
    if (auto it = _queryMemo.find(memo_key); it != _queryMemo.end()) {
        ++_stats.cacheHits;
        return it->second;
    }

    std::vector<PathState> stack;
    {
        PathState init;
        init.phase = 0;
        init.node = access.node;
        init.instr = access.instrIdx;
        init.skipEffect = true;
        stack.push_back(std::move(init));
    }

    int paths = 0;
    int steps = 0;
    while (!stack.empty()) {
        if (++steps > _opts.maxSteps || paths > _opts.maxPaths) {
            ++_stats.budgetExhausted;
            _queryMemo[memo_key] = QueryVerdict::Budget;
            return QueryVerdict::Budget;
        }
        PathState st = std::move(stack.back());
        stack.pop_back();
        ++_stats.statesExpanded;

        if (st.depth > _opts.maxDepth) {
            ++paths;
            continue;
        }
        if (_opts.useNodeCache && st.phase == 0 &&
            _nodeCache->contains(st.node)) {
            ++_stats.cacheHits;
            ++paths;
            continue;
        }
        if (st.phase == 0)
            _queryVisited.insert(st.node);

        const air::Method *m = _r.cg.node(st.node).method;
        const Instruction &instr = m->instr(st.instr);

        if (!st.skipEffect) {
            if (instr.op == Opcode::Invoke) {
                if (!handleInvoke(st, instr, stack)) {
                    ++paths;
                    continue;
                }
            } else if (!transfer(st, instr)) {
                ++paths;
                continue;
            }
        }
        st.skipEffect = false;

        if (st.instr == 0) {
            // The method entry is one continuation; a back edge into
            // instruction 0 is another, so also fall through to the
            // predecessor exploration below.
            if (atEntry(st, action_a, action_b, stack)) {
                ++_stats.pathsExplored;
                _queryMemo[memo_key] = QueryVerdict::Feasible;
                return QueryVerdict::Feasible;
            }
        }

        const analysis::Cfg &cfg = cfgOf(m);
        std::vector<int> preds = cfg.instrPreds(st.instr);
        if (preds.empty()) {
            ++paths;
            continue;
        }
        const analysis::MethodConstants *facts =
            _opts.useConstFacts ? &factsOf(m) : nullptr;
        for (int q : preds) {
            const Instruction &pred = m->instr(q);
            if (facts &&
                (!facts->reachable(q) ||
                 !facts->edgeFeasible(q, st.instr))) {
                // The constant fixpoint proved no execution flows
                // along this edge: don't walk it.
                ++_stats.constPruned;
                ++paths;
                continue;
            }
            if (_opts.inter &&
                (!_opts.inter->reachable(m, q) ||
                 !_opts.inter->edgeFeasible(m, q, st.instr))) {
                // Same, but only the interprocedural facts (seeded
                // parameters, callee returns) could prove it.
                ++_stats.interPruned;
                ++paths;
                continue;
            }
            PathState next = st;
            next.instr = q;
            next.depth = st.depth + 1;

            if (pred.isConditionalBranch()) {
                bool via_target = pred.target == st.instr;
                bool via_fall = q + 1 == st.instr;
                CondKind cond = pred.cond;
                bool add = true;
                if (via_target && via_fall) {
                    add = false; // both edges reach here: no constraint
                } else if (!via_target && via_fall) {
                    cond = air::negateCond(cond);
                }
                if (add) {
                    Atom atom;
                    atom.lhs = Operand::regOp(
                        regKey(st.frame, pred.srcs[0]));
                    atom.cond = cond;
                    atom.rhs =
                        pred.op == Opcode::IfZ
                            ? Operand::constant(0)
                            : Operand::regOp(
                                  regKey(st.frame, pred.srcs[1]));
                    if (!next.store.add(atom)) {
                        ++paths;
                        continue;
                    }
                }
            }
            stack.push_back(std::move(next));
        }
    }

    // Every path pruned: the ordering is infeasible.
    if (_opts.useNodeCache)
        _nodeCache->insertAll(_queryVisited);
    _queryMemo[memo_key] = QueryVerdict::Infeasible;
    return QueryVerdict::Infeasible;
}

} // namespace sierra::symbolic
