/**
 * @file
 * Refutation driver: runs the backward executor over candidate racy
 * pairs in both orders (paper Section 5).
 *
 * A candidate race <alpha_A, alpha_B> is a true positive iff both
 * orderings are feasible; if either ordering is infeasible the pair is
 * refuted. Budget exhaustion conservatively keeps the report (paper:
 * "in line with our approach to over-approximate actual races").
 */

#ifndef SIERRA_SYMBOLIC_REFUTER_HH
#define SIERRA_SYMBOLIC_REFUTER_HH

#include <vector>

#include "executor.hh"
#include "race/racy.hh"

namespace sierra::symbolic {

/** Refuter options. */
struct RefuterOptions {
    ExecutorOptions exec;
    //! how many (action1, action2) pairs to try per racy pair; a pair is
    //! refuted only if every tried pair is refuted
    int maxActionPairsPerRace{16};
};

/** Aggregate statistics for the evaluation tables. */
struct RefutationStats {
    int refuted{0};
    int survived{0};
    int timedOut{0};
    ExecutorStats exec;
};

/**
 * Mark refuted pairs in place. Returns statistics; the executor's
 * refuted-node cache is shared across all pairs of one call.
 */
RefutationStats
refuteRaces(const analysis::PointsToResult &result,
            const std::vector<race::Access> &accesses,
            std::vector<race::RacyPair> &pairs,
            const RefuterOptions &options = {});

} // namespace sierra::symbolic

#endif // SIERRA_SYMBOLIC_REFUTER_HH
