/**
 * @file
 * Refutation driver: runs the backward executor over candidate racy
 * pairs in both orders (paper Section 5).
 *
 * A candidate race <alpha_A, alpha_B> is a true positive iff both
 * orderings are feasible; if either ordering is infeasible the pair is
 * refuted. Budget exhaustion conservatively keeps the report (paper:
 * "in line with our approach to over-approximate actual races").
 *
 * Refutation is query-parallel: with jobs > 1 the racy pairs are
 * sharded (round-robin) across per-worker BackwardExecutor instances.
 * Each pair's verdict is a deterministic function of the pointer-
 * analysis result alone, so verdicts (and therefore the
 * refuted/survived/timedOut counts) are identical at every jobs
 * count. Work counters (statesExpanded, cacheHits, ...) depend on
 * which queries shared an executor's memo, so only their merge is
 * deterministic, not their value across jobs counts. With
 * `exec.useNodeCache` the workers share one lock-striped
 * RefutedNodeCache; that cache is verdict-affecting and
 * timing-dependent, so node-cache runs are not jobs-deterministic
 * (the cache is off by default, see ExecutorOptions).
 */

#ifndef SIERRA_SYMBOLIC_REFUTER_HH
#define SIERRA_SYMBOLIC_REFUTER_HH

#include <vector>

#include "executor.hh"
#include "race/racy.hh"

namespace sierra::symbolic {

/** Refuter options. */
struct RefuterOptions {
    ExecutorOptions exec;
    //! how many (action1, action2) pairs to try per racy pair; a pair is
    //! refuted only if every tried pair is refuted
    int maxActionPairsPerRace{16};
    //! worker count for sharded refutation; 0 = SIERRA_JOBS env var,
    //! else hardware_concurrency (see util::resolveJobs)
    int jobs{1};
};

/** Aggregate statistics for the evaluation tables. */
struct RefutationStats {
    int refuted{0};
    int survived{0};
    int timedOut{0};
    /**
     * CPU seconds spent deciding pairs, summed over every refuter
     * worker thread (thread-CPU clock, not wall). Under sharded
     * refutation the task thread's wall clock only sees the elapsed
     * time of the fan-out, so StageTimes uses this sum instead —
     * worker CPU is accounted, not lost (see StageTimes docs).
     */
    double cpuSeconds{0};
    ExecutorStats exec;

    /** Component-wise sum; associative (see ExecutorStats::merge). */
    void
    merge(const RefutationStats &o)
    {
        refuted += o.refuted;
        survived += o.survived;
        timedOut += o.timedOut;
        cpuSeconds += o.cpuSeconds;
        exec.merge(o.exec);
    }
};

/**
 * Mark refuted pairs in place, sharding across `options.jobs` workers.
 * Pairs already refuted by an earlier stage (lock sets) are skipped
 * and excluded from the statistics.
 * Returns statistics merged in worker order; each worker's executor
 * keeps its own refuted-node cache unless they share one (see file
 * comment).
 */
RefutationStats
refuteRaces(const analysis::PointsToResult &result,
            const std::vector<race::Access> &accesses,
            std::vector<race::RacyPair> &pairs,
            const RefuterOptions &options = {});

} // namespace sierra::symbolic

#endif // SIERRA_SYMBOLIC_REFUTER_HH
