#include "constraint.hh"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "air/logging.hh"

namespace sierra::symbolic {

using air::CondKind;

std::string
Operand::toString() const
{
    switch (kind) {
      case Kind::Unknown: return "?";
      case Kind::Const: return std::to_string(value);
      case Kind::Reg: return "r" + std::to_string(reg);
      case Kind::Loc:
        return (loc.isStatic ? "static:" : "") + loc.key.str() + "#" +
               std::to_string(loc.obj);
    }
    panic("unreachable operand kind");
}

std::string
Atom::toString() const
{
    return lhs.toString() + " " + air::condName(cond) + " " +
           rhs.toString();
}

namespace {

bool
sameLoc(const race::MemLoc &a, const race::MemLoc &b)
{
    return a == b;
}

void
substOperand(Operand &op, const Operand &pattern, const Operand &value)
{
    if (pattern.isReg() && op.isReg() && op.reg == pattern.reg)
        op = value;
    else if (pattern.isLoc() && op.isLoc() && sameLoc(op.loc, pattern.loc))
        op = value;
}

} // namespace

int
ConstraintStore::simplify(Atom &atom)
{
    if (atom.lhs.isUnknown() || atom.rhs.isUnknown())
        return 1; // unconstrained: drop (conservatively satisfiable)
    if (atom.lhs.isConst() && atom.rhs.isConst()) {
        return air::evalCond(atom.cond, atom.lhs.value, atom.rhs.value)
                   ? 1
                   : -1;
    }
    // Normalize Const-vs-Loc to Loc-vs-Const.
    if (atom.lhs.isConst() && atom.rhs.isLoc()) {
        std::swap(atom.lhs, atom.rhs);
        switch (atom.cond) {
          case CondKind::Lt: atom.cond = CondKind::Gt; break;
          case CondKind::Le: atom.cond = CondKind::Ge; break;
          case CondKind::Gt: atom.cond = CondKind::Lt; break;
          case CondKind::Ge: atom.cond = CondKind::Le; break;
          default: break;
        }
    }
    // Trivially true self-comparisons.
    if (atom.lhs.isLoc() && atom.rhs.isLoc() &&
        sameLoc(atom.lhs.loc, atom.rhs.loc)) {
        bool holds = atom.cond == CondKind::Eq ||
                     atom.cond == CondKind::Le ||
                     atom.cond == CondKind::Ge;
        return holds ? 1 : -1;
    }
    return 0;
}

bool
ConstraintStore::resimplifyAll()
{
    if (_failed)
        return false;
    std::vector<Atom> kept;
    for (Atom &a : _atoms) {
        int s = simplify(a);
        if (s == -1) {
            _failed = true;
            return false;
        }
        if (s == 0)
            kept.push_back(std::move(a));
    }
    _atoms = std::move(kept);
    if (!solveLocConstSystem(_atoms)) {
        _failed = true;
        return false;
    }
    return true;
}

bool
ConstraintStore::add(Atom atom)
{
    if (_failed)
        return false;
    int s = simplify(atom);
    if (s == -1) {
        _failed = true;
        return false;
    }
    if (s == 0)
        _atoms.push_back(std::move(atom));
    return resimplifyAll();
}

bool
ConstraintStore::substituteReg(int reg, const Operand &value)
{
    if (_failed)
        return false;
    Operand pattern = Operand::regOp(reg);
    for (Atom &a : _atoms) {
        substOperand(a.lhs, pattern, value);
        substOperand(a.rhs, pattern, value);
    }
    return resimplifyAll();
}

bool
ConstraintStore::substituteLoc(const race::MemLoc &loc,
                               const Operand &value)
{
    if (_failed)
        return false;
    Operand pattern = Operand::locOp(loc);
    for (Atom &a : _atoms) {
        substOperand(a.lhs, pattern, value);
        substOperand(a.rhs, pattern, value);
    }
    return resimplifyAll();
}

void
ConstraintStore::dropRegAtoms()
{
    std::vector<Atom> kept;
    for (Atom &a : _atoms) {
        if (!a.lhs.isReg() && !a.rhs.isReg())
            kept.push_back(std::move(a));
    }
    _atoms = std::move(kept);
}

void
ConstraintStore::dropRegsInRange(int lo, int hi)
{
    auto mentions = [&](const Operand &op) {
        return op.isReg() && op.reg >= lo && op.reg < hi;
    };
    std::vector<Atom> kept;
    for (Atom &a : _atoms) {
        if (!mentions(a.lhs) && !mentions(a.rhs))
            kept.push_back(std::move(a));
    }
    _atoms = std::move(kept);
}

bool
ConstraintStore::substituteKeyWithConst(analysis::FieldKey key,
                                        int64_t value,
                                        const std::set<int> &objs)
{
    if (_failed)
        return false;
    Operand v = Operand::constant(value);
    auto matches = [&](const Operand &op) {
        return op.isLoc() && op.loc.key == key &&
               (objs.empty() || objs.count(op.loc.obj));
    };
    for (Atom &a : _atoms) {
        if (matches(a.lhs))
            a.lhs = v;
        if (matches(a.rhs))
            a.rhs = v;
    }
    return resimplifyAll();
}

void
ConstraintStore::dropLocsByKey(
    const std::vector<analysis::FieldKey> &keys)
{
    auto mentions = [&](const Operand &op) {
        if (!op.isLoc())
            return false;
        return std::find(keys.begin(), keys.end(), op.loc.key) !=
               keys.end();
    };
    std::vector<Atom> kept;
    for (Atom &a : _atoms) {
        if (!mentions(a.lhs) && !mentions(a.rhs))
            kept.push_back(std::move(a));
    }
    _atoms = std::move(kept);
}

bool
ConstraintStore::renameReg(int from, int to)
{
    return substituteReg(from, Operand::regOp(to));
}

bool
ConstraintStore::consistent() const
{
    if (_failed)
        return false;
    return solveLocConstSystem(_atoms);
}

std::string
ConstraintStore::toString() const
{
    std::ostringstream os;
    if (_failed)
        os << "<unsat> ";
    for (size_t i = 0; i < _atoms.size(); ++i) {
        if (i)
            os << " && ";
        os << _atoms[i].toString();
    }
    return os.str();
}

bool
solveLocConstSystem(const std::vector<Atom> &atoms)
{
    // Group loc-vs-const atoms per location; other atoms (loc-vs-loc,
    // reg atoms) are treated as satisfiable.
    struct Domain {
        int64_t lo{std::numeric_limits<int64_t>::min()};
        int64_t hi{std::numeric_limits<int64_t>::max()};
        bool hasEq{false};
        int64_t eq{0};
        std::set<int64_t> ne;
    };
    // Domain key: (base object, static?, interned key id). Interned
    // ids replace the old "s:"/"i:"-prefixed strings; satisfiability
    // does not depend on domain ordering, so id order is fine.
    std::map<std::tuple<int, bool, analysis::FieldId>, Domain> domains;

    for (const Atom &a : atoms) {
        if (!a.lhs.isLoc() || !a.rhs.isConst())
            continue;
        auto key = std::make_tuple(a.lhs.loc.obj, a.lhs.loc.isStatic,
                                   a.lhs.loc.key.id);
        Domain &d = domains[key];
        int64_t v = a.rhs.value;
        switch (a.cond) {
          case CondKind::Eq:
            if (d.hasEq && d.eq != v)
                return false;
            d.hasEq = true;
            d.eq = v;
            break;
          case CondKind::Ne:
            d.ne.insert(v);
            break;
          case CondKind::Lt:
            d.hi = std::min(d.hi, v - 1);
            break;
          case CondKind::Le:
            d.hi = std::min(d.hi, v);
            break;
          case CondKind::Gt:
            d.lo = std::max(d.lo, v + 1);
            break;
          case CondKind::Ge:
            d.lo = std::max(d.lo, v);
            break;
        }
    }
    for (const auto &[key, d] : domains) {
        if (d.lo > d.hi)
            return false;
        if (d.hasEq) {
            if (d.eq < d.lo || d.eq > d.hi || d.ne.count(d.eq))
                return false;
            continue;
        }
        // Interval minus excluded points must be non-empty. Width is
        // computed in unsigned arithmetic: hi - lo would overflow for
        // the unbounded interval (and an unbounded interval can never
        // be fully excluded by a finite ne-set anyway).
        uint64_t width = static_cast<uint64_t>(d.hi) -
                         static_cast<uint64_t>(d.lo);
        if (width != std::numeric_limits<uint64_t>::max() &&
            width + 1 <= d.ne.size()) {
            uint64_t count = 0;
            for (int64_t v : d.ne) {
                if (v >= d.lo && v <= d.hi)
                    ++count;
            }
            if (count >= width + 1)
                return false;
        }
    }
    return true;
}

} // namespace sierra::symbolic
