/**
 * @file
 * Path constraints and the built-in solver for backward symbolic
 * execution (paper Section 5).
 *
 * Constraints are conjunctions of atoms "operand COND operand" where
 * operands are constants, registers (frame-local, resolved during the
 * backward walk) or abstract memory locations. The solver decides
 * satisfiability of the location-vs-constant fragment, which is what
 * ad-hoc synchronization guards (boolean flags, null checks, message
 * `what` tags) compile to.
 */

#ifndef SIERRA_SYMBOLIC_CONSTRAINT_HH
#define SIERRA_SYMBOLIC_CONSTRAINT_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "air/instruction.hh"
#include "race/access.hh"

namespace sierra::symbolic {

/** One side of an atom. */
struct Operand {
    enum class Kind { Unknown, Const, Reg, Loc };
    Kind kind{Kind::Unknown};
    int64_t value{0}; //!< Const payload
    int reg{-1};      //!< Reg payload (current frame)
    race::MemLoc loc; //!< Loc payload

    static Operand unknown() { return {}; }
    static Operand
    constant(int64_t v)
    {
        Operand o;
        o.kind = Kind::Const;
        o.value = v;
        return o;
    }
    static Operand
    regOp(int r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }
    static Operand
    locOp(race::MemLoc l)
    {
        Operand o;
        o.kind = Kind::Loc;
        o.loc = std::move(l);
        return o;
    }

    bool isUnknown() const { return kind == Kind::Unknown; }
    bool isConst() const { return kind == Kind::Const; }
    bool isReg() const { return kind == Kind::Reg; }
    bool isLoc() const { return kind == Kind::Loc; }

    std::string toString() const;
};

/** One conjunct: lhs COND rhs. */
struct Atom {
    Operand lhs;
    air::CondKind cond{air::CondKind::Eq};
    Operand rhs;

    std::string toString() const;
};

/**
 * A conjunction of atoms with weakest-precondition substitution.
 *
 * The store is path-local: backward execution copies it when forking.
 * All mutating operations return false when the conjunction became
 * unsatisfiable (the path can be pruned).
 */
class ConstraintStore
{
  public:
    /** Add an atom; simplifies immediately. */
    bool add(Atom atom);

    /** Weakest precondition of "reg := value": substitute. */
    bool substituteReg(int reg, const Operand &value);

    /** Weakest precondition of "loc := value" (strong update). */
    bool substituteLoc(const race::MemLoc &loc, const Operand &value);

    /** Drop every atom that mentions a register (frame boundary). */
    void dropRegAtoms();

    /** Drop atoms mentioning register keys in [lo, hi) (used to discard
     *  a frame's temporaries at its entry boundary). */
    void dropRegsInRange(int lo, int hi);

    /** Substitute locations whose key matches (and, when `objs` is
     *  non-empty, whose base object is in `objs`) with a constant --
     *  on-demand constant propagation for Message.what. Keys compare
     *  by interned id, so the FieldKey must come from the same
     *  interner as the accesses (the harness's PointsToResult). */
    bool substituteKeyWithConst(analysis::FieldKey key, int64_t value,
                                const std::set<int> &objs = {});

    /** Drop atoms on locations whose key is in `keys` (call havoc). */
    void dropLocsByKey(const std::vector<analysis::FieldKey> &keys);

    /** Re-map register operands across a call frame: register `from` in
     *  the callee becomes register `to` in the caller. */
    bool renameReg(int from, int to);

    /** Satisfiability of the Loc-vs-Const fragment (other atoms are
     *  treated as satisfiable). */
    bool consistent() const;

    bool failed() const { return _failed; }
    size_t size() const { return _atoms.size(); }
    const std::vector<Atom> &atoms() const { return _atoms; }

    std::string toString() const;

  private:
    /** Simplify one atom: returns 1 (true, drop), 0 (keep), -1 (false,
     *  unsat). */
    static int simplify(Atom &atom);
    bool resimplifyAll();

    std::vector<Atom> _atoms;
    bool _failed{false};
};

/**
 * Decide satisfiability of a conjunction of (loc COND const) atoms over
 * integers. Exposed for direct testing; ConstraintStore::consistent()
 * delegates here.
 */
bool solveLocConstSystem(const std::vector<Atom> &atoms);

} // namespace sierra::symbolic

#endif // SIERRA_SYMBOLIC_CONSTRAINT_HH
