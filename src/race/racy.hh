/**
 * @file
 * Racy-pair detection and prioritization (paper Sections 3.1 and 4.4).
 */

#ifndef SIERRA_RACE_RACY_HH
#define SIERRA_RACE_RACY_HH

#include <functional>
#include <string>
#include <vector>

#include "access.hh"
#include "analysis/effects.hh"
#include "analysis/enablement.hh"
#include "analysis/escape.hh"
#include "analysis/lockset.hh"
#include "analysis/nullflow.hh"
#include "hb/shbg.hh"

namespace sierra::race {

/** Which stage refuted a racy pair (per-pair provenance). */
enum class RefutedBy : uint8_t {
    None,       //!< the pair survives
    Lockset,    //!< a common must-held lock on every action pair
    Enablement, //!< registration typestate: a callback was disabled
    Symbolic,   //!< the backward symbolic executor
};

const char *refutedByName(RefutedBy r);

/** One (action, action) combination a racy pair conflicts under, with
 *  the concrete access instances (per-context nodes) it arose from. */
struct ActionPairEntry {
    int action1{-1};
    int action2{-1};
    int access1{-1}; //!< access executed by action1
    int access2{-1}; //!< access executed by action2
};

/** A candidate race: two unordered conflicting accesses. */
struct RacyPair {
    int access1{-1}; //!< representative access (for display)
    int access2{-1};
    MemLoc loc;      //!< a witness shared location
    //! all (action1, action2) pairs under which the accesses conflict
    std::vector<ActionPairEntry> actionPairs;
    int priority{0};     //!< larger = report earlier
    bool refuted{false}; //!< set by a refutation stage
    RefutedBy refutedBy{RefutedBy::None};
    bool refutationTimedOut{false};
    //! null-value-flow severity (set by classifyWithNullFlow on
    //! surviving pairs; Unknown with the stage off)
    analysis::NullVerdict severity{analysis::NullVerdict::Unknown};
    //! provenance chain of the severity verdict (empty for Unknown)
    std::string severityChain;

    std::string toString(const analysis::PointsToResult &r,
                         const std::vector<Access> &accesses) const;
};

/** Work counters from one findRacyPairs call (plain increments on the
 *  calling thread; metric names in docs/OBSERVABILITY.md). */
struct RacyStats {
    //! access pairs surviving the keep mask and write check
    int64_t accessPairsConsidered{0};
    //! of those, dropped by the field-effect summary prefilter
    int64_t prefilterSkipped{0};
    //! of those, reaching the points-to intersection
    int64_t aliasChecked{0};
};

/** Options for racy-pair detection. */
struct RacyOptions {
    //! skip pairs where both actions run on different loopers (paper
    //! Section 4.4: handlers must refer to the same looper)
    bool requireSameLooper{true};
    /**
     * Optional field-effect summaries (analysis::FieldEffects) used as
     * a cheap prefilter: an access pair whose enclosing methods have
     * provably disjoint effects is dropped before the points-to
     * intersection and action-pair enumeration. Report-preserving:
     * each access's own field is in its method's summary, so any pair
     * that could alias also conflicts at the summary level. Not owned;
     * must outlive the call. Null disables the prefilter.
     */
    const analysis::FieldEffects *effects{nullptr};
    /**
     * Optional per-access keep mask from the escape analysis (same
     * indexing as the accesses vector; 0 = every base object of the
     * access is thread-local, skip it). Access indices are never
     * rewritten, so RacyPair access ids stay valid. Not owned; null
     * disables the filter.
     */
    const std::vector<char> *liveAccess{nullptr};
    /**
     * Optional out-param: work counters for the metrics registry.
     * Not owned; null skips the bookkeeping entirely.
     */
    RacyStats *stats{nullptr};
};

/**
 * Intersect points-to sets of accesses from unordered action pairs
 * (paper Section 4.1 "racy pairs"): at least one write, overlapping
 * locations, actions unordered in the SHBG, same looper (or at least
 * one background thread).
 *
 * Pairs are deduplicated by (site1, site2, location key).
 */
std::vector<RacyPair>
findRacyPairs(const analysis::PointsToResult &result,
              const hb::Shbg &shbg, const std::vector<Access> &accesses,
              const RacyOptions &options = {});

/**
 * Assign priorities (paper Section 3.1): races in app code rank above
 * framework races reached from app code; reference-typed locations rank
 * higher (NullPointerException risk). Sorts the vector in place,
 * highest priority first; ties broken by site order for determinism.
 */
void prioritize(const analysis::PointsToResult &result,
                const std::vector<Access> &accesses,
                std::vector<RacyPair> &pairs);

/**
 * Per-access keep mask for RacyOptions::liveAccess: an access is kept
 * when it touches a static location or any escaping base object
 * (see analysis::EscapeAnalysis for why dropping the rest preserves
 * reports).
 */
std::vector<char>
escapeLiveMask(const analysis::EscapeAnalysis &escape,
               const std::vector<Access> &accesses);

/**
 * Lock-set refutation (runs before the symbolic refuter): mark a pair
 * `refutedBy: Lockset` when EVERY action pair of the race (a) involves
 * at least one background-thread action and (b) has a common must-held
 * lock over its two access instances. Same-looper action pairs are
 * exempt: their accesses never interleave at instruction granularity —
 * the race is event-order nondeterminism, which monitors do not order —
 * so any pair with a same-looper entry survives this stage. Returns
 * the number of pairs newly refuted.
 */
int refuteWithLockSets(const analysis::PointsToResult &result,
                       const analysis::LockSetAnalysis &locks,
                       const std::vector<Access> &accesses,
                       std::vector<RacyPair> &pairs);

/**
 * Enablement refutation (runs after lockset, before IFDS): mark a
 * pair `refutedBy: Enablement` when EVERY action pair of the race has
 * one action whose enabling registration is must-disabled before the
 * other action can run (analysis::EnablementAnalysis::disabledBefore,
 * queried in both directions). `reaches` is SHBG reachability
 * (hb::Shbg::reaches), passed as a closure because analysis/ may not
 * depend on hb/. Returns the number of pairs newly refuted.
 */
int refuteWithEnablement(analysis::EnablementAnalysis &enablement,
                         const std::function<bool(int, int)> &reaches,
                         std::vector<RacyPair> &pairs);

/**
 * Null-value-flow severity classification (runs after every refutation
 * stage, before prioritization): for each *surviving* pair whose
 * accesses are a reference-typed field read racing a write, ask the
 * demand-driven analysis::NullFlowAnalysis whether the read can
 * observe null/absent state (HARMFUL), is protected by a dominating
 * null check (GUARDED), or neither (UNKNOWN). Stamps
 * RacyPair::severity + severityChain; refuted pairs and pairs without
 * a read/write ref-field shape stay Unknown. Returns the number of
 * pairs classified non-Unknown.
 */
int classifyWithNullFlow(analysis::NullFlowAnalysis &nullflow,
                         const std::vector<Access> &accesses,
                         std::vector<RacyPair> &pairs);

} // namespace sierra::race

#endif // SIERRA_RACE_RACY_HH
