/**
 * @file
 * Memory-access extraction (paper Section 4.1: accesses are
 * <variable, access type, action> bundles resolved through points-to).
 */

#ifndef SIERRA_RACE_ACCESS_HH
#define SIERRA_RACE_ACCESS_HH

#include <string>
#include <vector>

#include "analysis/field_key.hh"
#include "analysis/points_to.hh"

namespace sierra::race {

/** One abstract memory location. Keys are interned FieldKeys: the hot
 *  comparisons (pair loop, alias checks) are u32 id compares; report
 *  code reads the string through key.str(). */
struct MemLoc {
    bool isStatic{false};
    analysis::ObjId obj{-1};  //!< base object for instance locations
    analysis::FieldKey key{}; //!< canonical "DeclaringClass.field"

    bool
    operator==(const MemLoc &o) const
    {
        return isStatic == o.isStatic && obj == o.obj && key == o.key;
    }
    bool
    operator<(const MemLoc &o) const
    {
        if (isStatic != o.isStatic)
            return isStatic < o.isStatic;
        if (obj != o.obj)
            return obj < o.obj;
        return key < o.key;
    }
    std::string toString(const analysis::PointsToResult &r) const;
};

/**
 * May two locations denote the same memory? Equal locations always do;
 * in addition, an array-element location aliases its array's wildcard
 * location (an unknown-index access may touch any element).
 */
bool locsMayAlias(const MemLoc &a, const MemLoc &b);

/** One static memory access site under a call-graph node. */
struct Access {
    analysis::NodeId node{-1};
    int instrIdx{-1};
    analysis::SiteId site{analysis::kNoSite};
    bool isWrite{false};
    bool isArrayElem{false};
    std::string fieldName;     //!< bare field name, for reports
    std::vector<MemLoc> locs;  //!< may be several bases
    bool inAppCode{true};      //!< accessing method is app code
    bool refTyped{false};      //!< the field holds a reference (NPE risk)

    std::string toString(const analysis::PointsToResult &r) const;
};

/**
 * Walk every call-graph node and collect its field/static/array element
 * accesses, resolving base registers through the points-to result.
 * Accesses inside synthetic (harness) code are skipped.
 */
std::vector<Access>
extractAccesses(const analysis::PointsToResult &result);

} // namespace sierra::race

#endif // SIERRA_RACE_ACCESS_HH
