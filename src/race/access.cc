#include "access.hh"

#include <unordered_map>

#include "air/logging.hh"
#include "analysis/array_keys.hh"

namespace sierra::race {

using air::Instruction;
using air::Opcode;
using analysis::FieldKey;
using analysis::NodeId;
using analysis::PointsToResult;

std::string
MemLoc::toString(const PointsToResult &r) const
{
    if (isStatic)
        return "static " + key.str();
    return r.objects.toString(obj, r.sites) + "." + key.str();
}

bool
locsMayAlias(const MemLoc &a, const MemLoc &b)
{
    if (a == b)
        return true;
    if (a.isStatic || b.isStatic || a.obj != b.obj)
        return false;
    if (!a.key.isArray() || !b.key.isArray())
        return false;
    // Same array object: a wildcard (unknown-index) access may alias
    // any element; two distinct constant indices do not alias.
    return a.key.isWildcard() || b.key.isWildcard();
}

std::string
Access::toString(const PointsToResult &r) const
{
    std::string out = isWrite ? "write " : "read ";
    out += fieldName + " at " + r.sites.toString(site);
    (void)r;
    return out;
}

std::vector<Access>
extractAccesses(const PointsToResult &result)
{
    std::vector<Access> out;
    // Memoized key resolution: fieldKey() walks the class hierarchy and
    // builds a string before interning; one entry per (field ref, base
    // object) makes the walk amortized O(1) over the extraction sweep.
    struct PtrObjHash {
        size_t
        operator()(const std::pair<const void *, int> &p) const
        {
            return std::hash<const void *>()(p.first) * 1000003u ^
                   std::hash<int>()(p.second);
        }
    };
    std::unordered_map<std::pair<const void *, int>, FieldKey, PtrObjHash>
        fieldMemo;
    std::unordered_map<const void *, FieldKey> staticMemo;
    auto fieldKeyOf = [&](analysis::ObjId o,
                          const air::FieldRef &field) -> FieldKey {
        auto key = std::make_pair(static_cast<const void *>(&field), o);
        auto it = fieldMemo.find(key);
        if (it != fieldMemo.end())
            return it->second;
        FieldKey k = result.fieldKey(o, field);
        fieldMemo.emplace(key, k);
        return k;
    };
    auto staticKeyOf = [&](const air::FieldRef &field) -> FieldKey {
        const void *key = &field;
        auto it = staticMemo.find(key);
        if (it != staticMemo.end())
            return it->second;
        FieldKey k = result.staticKey(field);
        staticMemo.emplace(key, k);
        return k;
    };

    for (NodeId n = 0; n < result.cg.numNodes(); ++n) {
        const air::Method *m = result.cg.node(n).method;
        if (!m->hasBody())
            continue;
        const air::Klass *owner = m->owner();
        if (owner->isSynthetic())
            continue; // harness code
        bool app_code = !owner->isFramework();
        for (int i = 0; i < m->numInstrs(); ++i) {
            const Instruction &instr = m->instr(i);
            Access a;
            a.node = n;
            a.instrIdx = i;
            a.inAppCode = app_code;
            switch (instr.op) {
              case Opcode::GetField:
              case Opcode::PutField: {
                a.isWrite = instr.op == Opcode::PutField;
                a.fieldName = instr.field.fieldName;
                for (analysis::ObjId o :
                     result.pointsTo(n, instr.srcs[0])) {
                    MemLoc loc;
                    loc.obj = o;
                    loc.key = fieldKeyOf(o, instr.field);
                    a.locs.push_back(loc);
                }
                const air::Field *f = result.cha.resolveField(
                    instr.field.className, instr.field.fieldName);
                a.refTyped = f && f->type.isReference();
                break;
              }
              case Opcode::GetStatic:
              case Opcode::PutStatic: {
                a.isWrite = instr.op == Opcode::PutStatic;
                a.fieldName = instr.field.fieldName;
                MemLoc loc;
                loc.isStatic = true;
                loc.key = staticKeyOf(instr.field);
                a.locs.push_back(loc);
                const air::Field *f = result.cha.resolveField(
                    instr.field.className, instr.field.fieldName);
                a.refTyped = f && f->type.isReference();
                break;
              }
              case Opcode::ArrayGet:
              case Opcode::ArrayPut: {
                a.isWrite = instr.op == Opcode::ArrayPut;
                a.isArrayElem = true;
                analysis::ConstVal idx = result.constOf(n, instr.srcs[1]);
                bool exact = result.options.indexSensitiveArrays &&
                             idx.isConst();
                a.fieldName = exact ? "$elem#" + std::to_string(idx.value)
                                    : "$elems";
                for (analysis::ObjId o :
                     result.pointsTo(n, instr.srcs[0])) {
                    MemLoc loc;
                    loc.obj = o;
                    const std::string &klass =
                        result.objects.get(o).klassName;
                    loc.key =
                        exact ? result.internKey(
                                    analysis::arrayElementKey(klass,
                                                              idx.value),
                                    FieldKey::kArray)
                              : result.internKey(
                                    analysis::arrayWildcardKey(klass),
                                    FieldKey::kArray |
                                        FieldKey::kWildcard);
                    a.locs.push_back(loc);
                }
                a.refTyped = true;
                break;
              }
              default:
                continue;
            }
            if (a.locs.empty())
                continue;
            a.site = result.sites.find(m, i);
            if (a.site == analysis::kNoSite) {
                // The site was never interned (the node was processed,
                // so this should not happen) -- skip defensively.
                continue;
            }
            out.push_back(std::move(a));
        }
    }
    return out;
}

} // namespace sierra::race
