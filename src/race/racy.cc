#include "racy.hh"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "air/logging.hh"
#include "util/trace.hh"

namespace sierra::race {

using analysis::Action;
using analysis::ObjId;
using analysis::PointsToResult;

const char *
refutedByName(RefutedBy r)
{
    switch (r) {
      case RefutedBy::None: return "none";
      case RefutedBy::Lockset: return "lockset";
      case RefutedBy::Enablement: return "enablement";
      case RefutedBy::Symbolic: return "symbolic";
    }
    return "?";
}

std::string
RacyPair::toString(const PointsToResult &r,
                   const std::vector<Access> &accesses) const
{
    std::string out = "race on " + loc.toString(r) + ": ";
    out += accesses[access1].toString(r);
    out += " vs ";
    out += accesses[access2].toString(r);
    if (!actionPairs.empty()) {
        const Action &a1 = r.actions.get(actionPairs[0].action1);
        const Action &a2 = r.actions.get(actionPairs[0].action2);
        out += " [" + a1.label + " || " + a2.label + "]";
    }
    if (refuted) {
        out += " (refuted";
        if (refutedBy != RefutedBy::None)
            out += std::string(": ") + refutedByName(refutedBy);
        out += ")";
    }
    return out;
}

namespace {

/** Shared locations of two accesses (points-to intersection, with
 *  array element/wildcard aliasing). */
std::vector<MemLoc>
sharedLocs(const Access &a1, const Access &a2)
{
    std::vector<MemLoc> out;
    for (const MemLoc &l1 : a1.locs) {
        for (const MemLoc &l2 : a2.locs) {
            if (locsMayAlias(l1, l2))
                out.push_back(l1);
        }
    }
    return out;
}

} // namespace

std::vector<RacyPair>
findRacyPairs(const PointsToResult &result, const hb::Shbg &shbg,
              const std::vector<Access> &accesses,
              const RacyOptions &options)
{
    // Dedup by (min site, max site, key).
    std::map<std::tuple<int, int, std::string>, RacyPair> dedup;

    // Per-access method summaries for the effect prefilter, fetched
    // once instead of per pair.
    std::vector<const analysis::FieldEffects::Summary *> summaries;
    if (options.effects) {
        summaries.reserve(accesses.size());
        for (const Access &a : accesses) {
            summaries.push_back(
                &options.effects->of(result.cg.node(a.node).method));
        }
    }

    // Work counters accumulate in locals (not through the stats
    // pointer) so the quadratic loop costs nothing extra when they are
    // unwanted.
    int64_t considered = 0, prefilter_skipped = 0, alias_checked = 0;

    const std::vector<char> *live = options.liveAccess;
    for (size_t i = 0; i < accesses.size(); ++i) {
        if (live && !(*live)[i])
            continue;
        for (size_t j = i; j < accesses.size(); ++j) {
            if (live && !(*live)[j])
                continue;
            const Access &x = accesses[i];
            const Access &y = accesses[j];
            if (!x.isWrite && !y.isWrite)
                continue;
            ++considered;
            if (options.effects &&
                !analysis::FieldEffects::mayConflict(*summaries[i],
                                                     *summaries[j])) {
                ++prefilter_skipped;
                continue;
            }
            ++alias_checked;
            std::vector<MemLoc> shared = sharedLocs(x, y);
            if (shared.empty())
                continue;

            std::vector<ActionPairEntry> qualifying;
            // Action pairs that differ only in which instance of the
            // same posting site created them give identical refutation
            // queries; dedup by that signature.
            std::set<std::tuple<int, int, int, int>> signatures;
            for (int a1 : result.cg.actionsOf(x.node)) {
                for (int a2 : result.cg.actionsOf(y.node)) {
                    if (a1 == a2)
                        continue;
                    if (!shbg.unordered(a1, a2))
                        continue;
                    const Action &act1 = result.actions.get(a1);
                    const Action &act2 = result.actions.get(a2);
                    if (options.requireSameLooper) {
                        if (act1.runsOnLooper() &&
                            act2.runsOnLooper() &&
                            result.looperOfAction(a1) !=
                                result.looperOfAction(a2)) {
                            continue;
                        }
                    }
                    if (!signatures
                             .insert({act1.creationSite,
                                      act1.messageWhat,
                                      act2.creationSite,
                                      act2.messageWhat})
                             .second) {
                        continue;
                    }
                    qualifying.push_back({a1, a2,
                                          static_cast<int>(i),
                                          static_cast<int>(j)});
                }
            }
            if (qualifying.empty())
                continue;

            int s1 = std::min(x.site, y.site);
            int s2 = std::max(x.site, y.site);
            // String key (not the interned id): map iteration order is
            // report order, which must stay lexicographic.
            auto key = std::make_tuple(s1, s2, shared.front().key.str());
            auto it = dedup.find(key);
            if (it == dedup.end()) {
                RacyPair p;
                p.access1 = static_cast<int>(i);
                p.access2 = static_cast<int>(j);
                p.loc = shared.front();
                p.actionPairs = std::move(qualifying);
                dedup.emplace(std::move(key), std::move(p));
            } else {
                // The site-level signature dedup above is per access
                // pair; across access-instance pairs, dedup on the
                // (creationSite, what) signature again.
                auto &existing = it->second;
                for (auto &q : qualifying) {
                    bool dup = false;
                    for (const auto &e : existing.actionPairs) {
                        const Action &ea1 = result.actions.get(e.action1);
                        const Action &ea2 = result.actions.get(e.action2);
                        const Action &qa1 = result.actions.get(q.action1);
                        const Action &qa2 = result.actions.get(q.action2);
                        if (ea1.creationSite == qa1.creationSite &&
                            ea1.messageWhat == qa1.messageWhat &&
                            ea2.creationSite == qa2.creationSite &&
                            ea2.messageWhat == qa2.messageWhat) {
                            dup = true;
                            break;
                        }
                    }
                    if (!dup)
                        existing.actionPairs.push_back(q);
                }
            }
        }
    }

    if (options.stats) {
        options.stats->accessPairsConsidered += considered;
        options.stats->prefilterSkipped += prefilter_skipped;
        options.stats->aliasChecked += alias_checked;
    }

    std::vector<RacyPair> out;
    out.reserve(dedup.size());
    for (auto &[key, pair] : dedup)
        out.push_back(std::move(pair));
    return out;
}

std::vector<char>
escapeLiveMask(const analysis::EscapeAnalysis &escape,
               const std::vector<Access> &accesses)
{
    std::vector<char> live(accesses.size(), 0);
    for (size_t i = 0; i < accesses.size(); ++i) {
        for (const MemLoc &loc : accesses[i].locs) {
            if (loc.isStatic || escape.escapes(loc.obj)) {
                live[i] = 1;
                break;
            }
        }
    }
    return live;
}

int
refuteWithLockSets(const PointsToResult &result,
                   const analysis::LockSetAnalysis &locks,
                   const std::vector<Access> &accesses,
                   std::vector<RacyPair> &pairs)
{
    int refuted = 0;
    for (RacyPair &pair : pairs) {
        if (pair.refuted || pair.actionPairs.empty())
            continue;
        bool all_protected = true;
        for (const ActionPairEntry &entry : pair.actionPairs) {
            const Action &a1 = result.actions.get(entry.action1);
            const Action &a2 = result.actions.get(entry.action2);
            // Monitors only order truly concurrent accesses. Two
            // same-looper events serialize anyway; their race is
            // event-order nondeterminism, which a lock held inside
            // each event cannot remove.
            if (a1.runsOnLooper() && a2.runsOnLooper()) {
                all_protected = false;
                break;
            }
            const Access &x = accesses[entry.access1];
            const Access &y = accesses[entry.access2];
            std::set<analysis::ObjId> l1 =
                locks.locksHeldAt(x.node, x.instrIdx);
            if (l1.empty()) {
                all_protected = false;
                break;
            }
            std::set<analysis::ObjId> l2 =
                locks.locksHeldAt(y.node, y.instrIdx);
            bool common = false;
            for (analysis::ObjId obj : l1) {
                if (l2.count(obj)) {
                    common = true;
                    break;
                }
            }
            if (!common) {
                all_protected = false;
                break;
            }
        }
        if (all_protected) {
            pair.refuted = true;
            pair.refutedBy = RefutedBy::Lockset;
            ++refuted;
            SIERRA_TRACE_INSTANT("refutation", "pair refuted",
                                 util::trace::arg("by", "lockset"));
        }
    }
    return refuted;
}

int
refuteWithEnablement(analysis::EnablementAnalysis &enablement,
                     const std::function<bool(int, int)> &reaches,
                     std::vector<RacyPair> &pairs)
{
    int refuted = 0;
    for (RacyPair &pair : pairs) {
        if (pair.refuted || pair.actionPairs.empty())
            continue;
        bool all_exonerated = true;
        for (const ActionPairEntry &entry : pair.actionPairs) {
            if (!enablement.disabledBefore(entry.action1, entry.action2,
                                           reaches) &&
                !enablement.disabledBefore(entry.action2, entry.action1,
                                           reaches)) {
                all_exonerated = false;
                break;
            }
        }
        if (all_exonerated) {
            pair.refuted = true;
            pair.refutedBy = RefutedBy::Enablement;
            ++refuted;
            SIERRA_TRACE_INSTANT("refutation", "pair refuted",
                                 util::trace::arg("by", "enablement"));
        }
    }
    return refuted;
}

int
classifyWithNullFlow(analysis::NullFlowAnalysis &nullflow,
                     const std::vector<Access> &accesses,
                     std::vector<RacyPair> &pairs)
{
    int classified = 0;
    for (RacyPair &pair : pairs) {
        if (pair.refuted)
            continue;
        const Access &x = accesses[pair.access1];
        const Access &y = accesses[pair.access2];
        // The sink shape is a reference-typed field read racing a
        // write: read/read and write/write pairs stay Unknown, as do
        // array-element races (no null-dereference shape to chase).
        if (x.isWrite == y.isWrite)
            continue;
        const Access &read = x.isWrite ? y : x;
        const Access &write = x.isWrite ? x : y;
        if (!read.refTyped || read.isArrayElem)
            continue;
        analysis::NullFlowVerdict v = nullflow.classifyRead(
            read.node, read.instrIdx, write.node, write.instrIdx,
            pair.loc.key.str());
        pair.severity = v.verdict;
        pair.severityChain = std::move(v.chain);
        if (v.verdict != analysis::NullVerdict::Unknown) {
            ++classified;
            SIERRA_TRACE_INSTANT(
                "nullflow", "pair classified",
                util::trace::arg(
                    "verdict",
                    analysis::nullVerdictName(v.verdict)));
        }
    }
    return classified;
}

void
prioritize(const PointsToResult &result,
           const std::vector<Access> &accesses,
           std::vector<RacyPair> &pairs)
{
    (void)result;
    for (RacyPair &p : pairs) {
        const Access &x = accesses[p.access1];
        const Access &y = accesses[p.access2];
        int score = 0;
        // Paper heuristic 1/2: application code ranks above framework
        // code reached from the app.
        if (x.inAppCode && y.inAppCode)
            score += 100;
        else if (x.inAppCode || y.inAppCode)
            score += 50;
        // Paper heuristic 3: pointer reference reads/writes can turn
        // into NullPointerExceptions.
        if (x.refTyped || y.refTyped)
            score += 25;
        if (x.isWrite && y.isWrite)
            score += 5;
        p.priority = score;
    }
    std::sort(pairs.begin(), pairs.end(),
              [&](const RacyPair &a, const RacyPair &b) {
                  if (a.priority != b.priority)
                      return a.priority > b.priority;
                  const Access &ax = accesses[a.access1];
                  const Access &bx = accesses[b.access1];
                  if (ax.site != bx.site)
                      return ax.site < bx.site;
                  return accesses[a.access2].site <
                         accesses[b.access2].site;
              });
}

} // namespace sierra::race
