/**
 * @file
 * GUI layout model: the reproduction's analogue of Android layout XML.
 *
 * Supplies (a) the view-id -> widget binding that findViewById resolves
 * through (DroidEL's job in the paper), (b) XML-registered callbacks, and
 * (c) optional "enabledAfter" edges that encode GUI flows where one
 * widget only becomes reachable after another was activated (the source
 * of onClick2 < onClick3 edges in paper Figure 6).
 */

#ifndef SIERRA_FRAMEWORK_LAYOUT_HH
#define SIERRA_FRAMEWORK_LAYOUT_HH

#include <string>
#include <vector>

namespace sierra::framework {

/** One widget declared in a layout. */
struct Widget {
    int id{0};                //!< the R.id.* constant
    std::string name;         //!< developer-facing name, e.g. "btnSend"
    std::string widgetClass;  //!< e.g. "android.widget.Button"
    std::string xmlOnClick;   //!< activity method bound via android:onClick
    std::vector<int> enabledAfter; //!< widget ids that must fire first
};

/** The layout of one Activity. */
class Layout
{
  public:
    Layout() = default;
    explicit Layout(std::string activity_class)
        : _activityClass(std::move(activity_class))
    {
    }

    const std::string &activityClass() const { return _activityClass; }

    void addWidget(Widget w) { _widgets.push_back(std::move(w)); }
    const std::vector<Widget> &widgets() const { return _widgets; }

    /** Find a widget by view id; null if absent. */
    const Widget *byId(int id) const;
    /** Find a widget by name; null if absent. */
    const Widget *byName(const std::string &name) const;

  private:
    std::string _activityClass;
    std::vector<Widget> _widgets;
};

} // namespace sierra::framework

#endif // SIERRA_FRAMEWORK_LAYOUT_HH
