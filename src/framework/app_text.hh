/**
 * @file
 * On-disk app format: a single text file bundling the manifest, the
 * layouts, and the AIR classes -- the reproduction's "APK file".
 *
 * Grammar (header first, then plain AIR classes):
 *
 *   app "Name" {
 *       activity NewsActivity main
 *       activity SettingsActivity
 *       service SyncService
 *       receiver NetReceiver action "net.DATA_READY"
 *       layout NewsActivity {
 *           widget 1001 "rvNews" android.widget.RecycleView
 *           widget 1002 "btnGo" android.widget.Button \
 *                  onclick onGo after 1001
 *       }
 *   }
 *   class NewsActivity extends android.app.Activity { ... }
 *
 * `printAppText` writes this format (app classes only; framework and
 * synthetic classes are omitted) and `parseAppText` reads it back, so
 * apps round-trip through disk.
 */

#ifndef SIERRA_FRAMEWORK_APP_TEXT_HH
#define SIERRA_FRAMEWORK_APP_TEXT_HH

#include <memory>
#include <string>

#include "app.hh"

namespace sierra::framework {

/** Result of parsing an app file. */
struct AppTextResult {
    std::unique_ptr<App> app; //!< null on failure
    std::string error;
    int errorLine{0};

    bool ok() const { return app != nullptr; }
};

/** Parse an app bundle (header + AIR classes) from text. The framework
 *  model classes are installed into the resulting module. */
AppTextResult parseAppText(const std::string &text);

/** Serialize an app into the bundle format (app classes only). With
 *  `with_bodies` false the instruction lines are omitted -- the
 *  structural "shape" the analysis store hashes; this projection does
 *  not round-trip. */
std::string printAppText(const App &app, bool with_bodies = true);

} // namespace sierra::framework

#endif // SIERRA_FRAMEWORK_APP_TEXT_HH
