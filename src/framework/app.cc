#include "app.hh"

#include "air/printer.hh"

namespace sierra::framework {

size_t
App::codeSize() const
{
    size_t total = 0;
    for (const air::Klass *k : _module->classes()) {
        if (!k->isFramework() && !k->isSynthetic())
            total += air::printKlass(*k).size();
    }
    return total;
}

} // namespace sierra::framework
