/**
 * @file
 * The unit SIERRA analyzes: code + manifest + layouts (an "APK").
 */

#ifndef SIERRA_FRAMEWORK_APP_HH
#define SIERRA_FRAMEWORK_APP_HH

#include <map>
#include <memory>
#include <string>

#include "air/module.hh"
#include "layout.hh"
#include "manifest.hh"

namespace sierra::framework {

/**
 * One Android app as seen by the analyses and the interpreter.
 *
 * Owns the AIR module (with the framework model installed), the manifest
 * and the per-activity layouts.
 */
class App
{
  public:
    explicit App(std::string name)
        : _name(std::move(name)), _module(std::make_unique<air::Module>())
    {
    }

    const std::string &name() const { return _name; }

    air::Module &module() { return *_module; }
    const air::Module &module() const { return *_module; }

    Manifest &manifest() { return _manifest; }
    const Manifest &manifest() const { return _manifest; }

    void
    setLayout(const std::string &activity, Layout layout)
    {
        _layouts[activity] = std::move(layout);
    }
    /** Layout for an activity; null if it declares none. */
    const Layout *layoutFor(const std::string &activity) const
    {
        auto it = _layouts.find(activity);
        return it == _layouts.end() ? nullptr : &it->second;
    }
    const std::map<std::string, Layout> &layouts() const
    {
        return _layouts;
    }

    /** Approximate bytecode size (Table 2 analogue), app classes only. */
    size_t codeSize() const;

  private:
    std::string _name;
    std::unique_ptr<air::Module> _module;
    Manifest _manifest;
    std::map<std::string, Layout> _layouts;
};

} // namespace sierra::framework

#endif // SIERRA_FRAMEWORK_APP_HH
