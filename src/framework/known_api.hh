/**
 * @file
 * The Android Framework API model.
 *
 * This is the reproduction's substitute for DroidEL + the WALA framework
 * scope: a table of framework classes (installed into every module as
 * bodyless "native" methods) plus a classifier that maps call sites to
 * concurrency-relevant API kinds (post, execute, start, register, ...).
 */

#ifndef SIERRA_FRAMEWORK_KNOWN_API_HH
#define SIERRA_FRAMEWORK_KNOWN_API_HH

#include <string>

#include "air/instruction.hh"
#include "air/module.hh"

namespace sierra::framework {

/**
 * Version of the known-API table below. Bumped whenever the set of
 * modeled framework classes or the call-site classifier changes in a
 * way that affects analysis results; the artifact store
 * (analysis/store) folds it into every content-hash key so cached
 * facts computed under an older table are never reused (see
 * docs/CACHING.md).
 */
inline constexpr int kKnownApiTableVersion = 2;

/** Concurrency-relevant framework API kinds (paper Table 1, column 2-3). */
enum class ApiKind {
    None,              //!< not a known concurrency API
    HandlerPost,       //!< Handler.post/postDelayed(Runnable)
    HandlerSendMessage,//!< Handler.sendMessage/sendEmptyMessage(...)
    HandlerRemove,     //!< Handler.removeCallbacks/removeMessages
    ViewPost,          //!< View.post(Runnable) -> main looper
    RunOnUiThread,     //!< Activity.runOnUiThread(Runnable)
    AsyncTaskExecute,  //!< AsyncTask.execute()
    ThreadStart,       //!< Thread.start()
    ExecutorExecute,   //!< Executor.execute(Runnable)
    MessageObtain,     //!< Message.obtain(...)
    FindViewById,      //!< Activity/View.findViewById(int)
    SetListener,       //!< View.setOn*Listener(obj)
    SetContentView,    //!< Activity.setContentView(int)
    RegisterReceiver,  //!< Context.registerReceiver(receiver, filter)
    UnregisterReceiver,
    SendBroadcast,     //!< Context.sendBroadcast(intent)
    StartService,      //!< Context.startService(intent)
    BindService,       //!< Context.bindService(intent, connection)
    StartActivity,     //!< Context.startActivity(intent)
    IntentSetClass,    //!< Intent.setClassName(str) (explicit target)
    PendingIntentGetActivity,  //!< PendingIntent.getActivity(intent)
    PendingIntentGetService,   //!< PendingIntent.getService(intent)
    PendingIntentGetBroadcast, //!< PendingIntent.getBroadcast(intent)
    PendingIntentSend, //!< PendingIntent.send()
    LooperMain,        //!< Looper.getMainLooper()
    HandlerThreadGetLooper, //!< HandlerThread.getLooper()
    LooperMy,          //!< Looper.myLooper()
    HandlerInit,       //!< new Handler(looper?)
    ThreadInit,        //!< new Thread(runnable?)
    ObjectInit,        //!< java.lang.Object.<init> and other no-op ctors
    NullCheck,         //!< Objects.isNull/nonNull/requireNonNull,
                       //!< TextUtils.isEmpty: tests/asserts nullness
};

const char *apiKindName(ApiKind k);

/** Well-known framework class names used across the code base. */
namespace names {
inline constexpr const char *object = "java.lang.Object";
inline constexpr const char *runnable = "java.lang.Runnable";
inline constexpr const char *thread = "java.lang.Thread";
inline constexpr const char *executor = "java.util.concurrent.Executor";
inline constexpr const char *activity = "android.app.Activity";
inline constexpr const char *service = "android.app.Service";
inline constexpr const char *receiver =
    "android.content.BroadcastReceiver";
inline constexpr const char *handler = "android.os.Handler";
inline constexpr const char *message = "android.os.Message";
inline constexpr const char *looper = "android.os.Looper";
inline constexpr const char *handlerThread = "android.os.HandlerThread";
inline constexpr const char *asyncTask = "android.os.AsyncTask";
inline constexpr const char *view = "android.view.View";
inline constexpr const char *onClickListener =
    "android.view.OnClickListener";
inline constexpr const char *onScrollListener =
    "android.view.OnScrollListener";
inline constexpr const char *onItemClickListener =
    "android.view.OnItemClickListener";
inline constexpr const char *serviceConnection =
    "android.content.ServiceConnection";
inline constexpr const char *intent = "android.content.Intent";
inline constexpr const char *pendingIntent = "android.app.PendingIntent";
inline constexpr const char *bundle = "android.os.Bundle";
inline constexpr const char *baseAdapter = "android.widget.BaseAdapter";
inline constexpr const char *button = "android.widget.Button";
inline constexpr const char *textView = "android.widget.TextView";
inline constexpr const char *listView = "android.widget.ListView";
inline constexpr const char *recycleView =
    "android.widget.RecycleView";
inline constexpr const char *objects = "java.util.Objects";
inline constexpr const char *textUtils = "android.text.TextUtils";
} // namespace names

/**
 * The framework API model over one module.
 *
 * classify() resolves a call target up the super-class chain so that,
 * e.g., LoaderTask.execute with `class LoaderTask extends
 * android.os.AsyncTask` is recognized as AsyncTaskExecute.
 */
class KnownApis
{
  public:
    explicit KnownApis(const air::Module &module) : _module(module) {}

    /** Classify a call site's target method reference. */
    ApiKind classify(const air::MethodRef &ref) const;

    /** Classify by resolved framework class + method name. */
    static ApiKind classifyExact(const std::string &class_name,
                                 const std::string &method_name);

    /**
     * The callback method a listener-registration API wires up, e.g.
     * setOnClickListener -> onClick. Empty if not a listener API.
     */
    static std::string listenerCallback(const std::string &method_name);

    /**
     * True when the invoke at `instr_idx` is a listener *clearing*
     * call: a SetListener-kind API whose listener argument is
     * definitely the null literal (`setOnClickListener(null)` and
     * friends). The null is recognized by a local backward walk
     * through register moves that aborts at any branch, terminator,
     * or jump target, so a `true` answer holds on every execution of
     * the call. Clearing a slot disables its callback; setting one
     * enables it — the enablement stage and the leakedRegistration
     * lint both key off this distinction.
     */
    static bool isListenerClear(const air::Method &method,
                                int instr_idx);

    /** True if the class is (or derives from) the given framework class. */
    bool isSubclassOf(const std::string &class_name,
                      const std::string &framework_class) const;

    const air::Module &module() const { return _module; }

  private:
    /** Walk the super chain to the framework class that declares the
     *  method; empty string if none does. */
    std::string resolveDeclaringFrameworkClass(
        const air::MethodRef &ref) const;

    const air::Module &_module;
};

/**
 * Install the framework model classes into a module (bodyless methods:
 * their semantics live in the analyses and the interpreter intrinsics).
 * Idempotent per class: skips classes that already exist.
 */
void installFrameworkModel(air::Module &module);

} // namespace sierra::framework

#endif // SIERRA_FRAMEWORK_KNOWN_API_HH
