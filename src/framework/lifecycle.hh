/**
 * @file
 * The Android Activity lifecycle state machine (paper Figure 5).
 *
 * Shared by the harness generator (which mirrors the machine in synthetic
 * code), the happens-before rules (which split cyclic callbacks by
 * dominator), and the dynamic interpreter (which drives real executions
 * through it).
 */

#ifndef SIERRA_FRAMEWORK_LIFECYCLE_HH
#define SIERRA_FRAMEWORK_LIFECYCLE_HH

#include <string>
#include <vector>

namespace sierra::framework {

/** Activity lifecycle states. */
enum class LifecycleState {
    Launched,
    Created,
    Started,
    Resumed,
    Paused,
    Stopped,
    Destroyed,
};

const char *lifecycleStateName(LifecycleState s);

/** One transition of the lifecycle machine. */
struct LifecycleTransition {
    LifecycleState from;
    LifecycleState to;
    std::string callback; //!< callback invoked on this transition
};

/**
 * The Activity lifecycle machine.
 *
 * Transitions follow the official Android Activity documentation:
 * Launched -onCreate-> Created -onStart-> Started -onResume-> Resumed
 * -onPause-> Paused { -onResume-> Resumed | -onStop-> Stopped }
 * Stopped { -onRestart-> Started (via onStart) | -onDestroy-> Destroyed }.
 */
class LifecycleModel
{
  public:
    LifecycleModel();

    const std::vector<LifecycleTransition> &transitions() const
    {
        return _transitions;
    }

    /** All lifecycle callback names, in first-visit order. */
    const std::vector<std::string> &callbackNames() const
    {
        return _callbackNames;
    }

    /** True if the name is a lifecycle callback (onCreate, ...). */
    bool isLifecycleCallback(const std::string &name) const;

    /** Transitions leaving a given state. */
    std::vector<LifecycleTransition>
    transitionsFrom(LifecycleState s) const;

    /**
     * The linear "happy path" callback sequence used before/after the
     * harness event loop: onCreate onStart onResume ... onPause onStop
     * onDestroy.
     */
    static std::vector<std::string> entrySequence();
    static std::vector<std::string> exitSequence();

    /**
     * Cyclic callback pairs (paper Section 4.3 rule 2): pause/resume and
     * stop/restart cycles whose callbacks need dominator splitting.
     */
    static std::vector<std::pair<std::string, std::string>> cyclePairs();

  private:
    std::vector<LifecycleTransition> _transitions;
    std::vector<std::string> _callbackNames;
};

} // namespace sierra::framework

#endif // SIERRA_FRAMEWORK_LIFECYCLE_HH
