/**
 * @file
 * Inter-component communication (ICC) model, after RAICC.
 *
 * Android components talk through Intents: startActivity / startService
 * / sendBroadcast deliver an Intent to a target component, and
 * PendingIntent wraps the same delivery for later ("atypical ICC" in
 * RAICC's terms — the send is decoupled from the Intent construction).
 * Statically these are control-flow edges the call graph cannot see:
 * the framework, not the app, invokes the target's lifecycle.
 *
 * IccModel scans every method body once, tracking Intent construction
 * chains (`new Intent("X")`, `Intent.setClassName("X")`, register
 * moves, PendingIntent.get*) with a linear per-method register scan,
 * and records one IccSite per delivery call. A site is *resolved* when
 * the Intent's explicit target names a manifest component of the
 * matching kind. Resolved activity->activity edges feed the harness
 * generator, which instantiates the target activity and drives its
 * lifecycle concurrently with the sender's events — races between the
 * two components then flow through the unchanged SIERRA pipeline.
 */

#ifndef SIERRA_FRAMEWORK_ICC_HH
#define SIERRA_FRAMEWORK_ICC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "app.hh"
#include "known_api.hh"

namespace sierra::framework {

/** Component kind an ICC delivery targets. */
enum class IccTargetKind { Activity, Service, Broadcast };

const char *iccTargetKindName(IccTargetKind k);

/** One Intent-delivery call site. */
struct IccSite {
    const air::Method *method{nullptr}; //!< the sending method
    int instrIdx{-1};                   //!< the delivery instruction
    ApiKind kind{ApiKind::None};        //!< the delivery API
    IccTargetKind targetKind{IccTargetKind::Activity};
    std::string senderClass; //!< outermost class of the sender
    std::string targetClass; //!< explicit manifest target; "" = unresolved
    bool pending{false};     //!< delivered through a PendingIntent

    bool resolved() const { return !targetClass.empty(); }
    std::string toString() const;
};

/** Work counters (the `icc.*` rows of docs/OBSERVABILITY.md). */
struct IccStats {
    int64_t callSites{0};      //!< Intent-delivery sites seen
    int64_t resolved{0};       //!< sites with an explicit manifest target
    int64_t unresolved{0};     //!< implicit / unmatched targets
    int64_t pendingSites{0};   //!< sites delivered via PendingIntent
    int64_t activityEdges{0};  //!< distinct sender->target activity edges
};

/** The ICC sites and component edges of one app. */
class IccModel
{
  public:
    explicit IccModel(const App &app);

    const std::vector<IccSite> &sites() const { return _sites; }
    const IccStats &stats() const { return _stats; }

    /**
     * Manifest activities explicitly targeted by code in `activity` or
     * its inner classes (`activity$...`), excluding `activity` itself.
     * Sorted and unique, so harness plans are deterministic.
     */
    std::vector<std::string>
    activityTargetsOf(const std::string &activity) const;

  private:
    struct PendingFields; // field-stored PendingIntent facts (icc.cc)
    void scanMethod(const air::Method *m, const KnownApis &apis,
                    PendingFields &fields, bool collect);

    const App &_app;
    std::vector<IccSite> _sites;
    IccStats _stats;
};

} // namespace sierra::framework

#endif // SIERRA_FRAMEWORK_ICC_HH
