#include "app_text.hh"

#include <cctype>
#include <sstream>
#include <vector>

#include "air/parser.hh"
#include "air/printer.hh"
#include "known_api.hh"

namespace sierra::framework {

namespace {

/** A whitespace token with quote support and line tracking. */
struct HeaderToken {
    std::string text;
    bool quoted{false};
    int line{1};
};

/** Tokenize the header region (everything up to its closing brace). */
bool
tokenizeHeader(const std::string &text, size_t &pos, int &line,
               std::vector<HeaderToken> &out, std::string &error)
{
    int depth = 0;
    bool seen_open = false;
    while (pos < text.size()) {
        char c = text[pos];
        if (c == '\n') {
            ++line;
            ++pos;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++pos;
            continue;
        }
        if (c == '#' ||
            (c == '/' && pos + 1 < text.size() && text[pos + 1] == '/')) {
            while (pos < text.size() && text[pos] != '\n')
                ++pos;
            continue;
        }
        if (c == '"') {
            ++pos;
            HeaderToken t;
            t.quoted = true;
            t.line = line;
            while (pos < text.size() && text[pos] != '"') {
                if (text[pos] == '\n')
                    ++line;
                t.text += text[pos++];
            }
            if (pos >= text.size()) {
                error = "unterminated string in app header";
                return false;
            }
            ++pos;
            out.push_back(std::move(t));
            continue;
        }
        if (c == '{' || c == '}') {
            out.push_back({std::string(1, c), false, line});
            ++pos;
            depth += c == '{' ? 1 : -1;
            if (c == '{')
                seen_open = true;
            if (seen_open && depth == 0)
                return true; // header complete
            continue;
        }
        HeaderToken t;
        t.line = line;
        while (pos < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[pos])) &&
               text[pos] != '{' && text[pos] != '}' &&
               text[pos] != '"') {
            t.text += text[pos++];
        }
        out.push_back(std::move(t));
    }
    error = "unterminated app header block";
    return false;
}

class HeaderParser
{
  public:
    HeaderParser(const std::vector<HeaderToken> &tokens,
                 AppTextResult &result)
        : _tokens(tokens), _result(result)
    {
    }

    std::unique_ptr<App> run();

  private:
    const HeaderToken &peek() const { return _tokens[_idx]; }
    const HeaderToken &next() { return _tokens[_idx++]; }
    bool
    atEnd() const
    {
        return _idx >= _tokens.size();
    }
    bool
    is(const std::string &word) const
    {
        return !atEnd() && !peek().quoted && peek().text == word;
    }
    bool
    fail(const std::string &msg)
    {
        _result.error = msg;
        _result.errorLine = atEnd() ? 0 : peek().line;
        return false;
    }

    bool expect(const std::string &word);
    bool parseLayout(App &app);

    const std::vector<HeaderToken> &_tokens;
    AppTextResult &_result;
    size_t _idx{0};
};

bool
HeaderParser::expect(const std::string &word)
{
    if (!is(word))
        return fail("expected '" + word + "' in app header");
    next();
    return true;
}

bool
HeaderParser::parseLayout(App &app)
{
    if (atEnd())
        return fail("layout needs an activity name");
    std::string activity = next().text;
    Layout layout(activity);
    if (!expect("{"))
        return false;
    while (!is("}")) {
        if (atEnd())
            return fail("unterminated layout block");
        if (!expect("widget"))
            return false;
        Widget w;
        if (atEnd())
            return fail("widget needs an id");
        try {
            w.id = std::stoi(next().text);
        } catch (...) {
            return fail("widget id must be an integer");
        }
        if (atEnd())
            return fail("widget needs a name");
        w.name = next().text;
        if (atEnd())
            return fail("widget needs a class");
        w.widgetClass = next().text;
        while (is("onclick") || is("after")) {
            std::string kw = next().text;
            if (atEnd())
                return fail("'" + kw + "' needs a value");
            if (kw == "onclick") {
                w.xmlOnClick = next().text;
            } else {
                try {
                    w.enabledAfter.push_back(std::stoi(next().text));
                } catch (...) {
                    return fail("'after' needs a widget id");
                }
            }
        }
        layout.addWidget(std::move(w));
    }
    next(); // '}'
    app.setLayout(activity, std::move(layout));
    return true;
}

std::unique_ptr<App>
HeaderParser::run()
{
    if (!expect("app"))
        return nullptr;
    if (atEnd()) {
        fail("app needs a name");
        return nullptr;
    }
    auto app = std::make_unique<App>(next().text);
    if (!expect("{"))
        return nullptr;

    while (!is("}")) {
        if (atEnd()) {
            fail("unterminated app block");
            return nullptr;
        }
        std::string kw = next().text;
        if (kw == "activity") {
            if (atEnd()) {
                fail("activity needs a class name");
                return nullptr;
            }
            std::string name = next().text;
            app->manifest().activities.push_back(name);
            if (is("main")) {
                next();
                app->manifest().mainActivity = name;
            }
            if (app->manifest().mainActivity.empty())
                app->manifest().mainActivity = name;
        } else if (kw == "service") {
            if (atEnd()) {
                fail("service needs a class name");
                return nullptr;
            }
            app->manifest().services.push_back({next().text});
        } else if (kw == "receiver") {
            if (atEnd()) {
                fail("receiver needs a class name");
                return nullptr;
            }
            ReceiverSpec spec;
            spec.className = next().text;
            while (is("action")) {
                next();
                if (atEnd()) {
                    fail("'action' needs a value");
                    return nullptr;
                }
                spec.actions.push_back(next().text);
            }
            app->manifest().receivers.push_back(std::move(spec));
        } else if (kw == "package") {
            if (atEnd()) {
                fail("package needs a name");
                return nullptr;
            }
            app->manifest().packageName = next().text;
        } else if (kw == "layout") {
            if (!parseLayout(*app))
                return nullptr;
        } else {
            fail("unknown app-header keyword '" + kw + "'");
            return nullptr;
        }
    }
    next(); // '}'
    return app;
}

} // namespace

AppTextResult
parseAppText(const std::string &text)
{
    AppTextResult result;
    size_t pos = 0;
    int line = 1;
    std::vector<HeaderToken> tokens;
    if (!tokenizeHeader(text, pos, line, tokens, result.error)) {
        result.errorLine = line;
        return result;
    }

    HeaderParser parser(tokens, result);
    std::unique_ptr<App> app = parser.run();
    if (!app)
        return result;

    // The rest of the file is plain AIR classes.
    air::ParseStatus status =
        air::parseInto(app->module(), text.substr(pos));
    if (!status.ok) {
        result.error = status.error;
        result.errorLine = line + status.errorLine - 1;
        return result;
    }
    installFrameworkModel(app->module());

    // Sanity: every manifest entry must name a class in the module.
    for (const auto &a : app->manifest().activities) {
        if (!app->module().getClass(a)) {
            result.error = "manifest activity '" + a +
                           "' has no class in the module";
            return result;
        }
    }
    result.app = std::move(app);
    return result;
}

std::string
printAppText(const App &app, bool with_bodies)
{
    std::ostringstream os;
    os << "app \"" << app.name() << "\" {\n";
    if (!app.manifest().packageName.empty()) {
        // Quoted: package names derived from app names may contain
        // spaces (e.g. "org.sierra.K-9 Mail").
        os << "    package \"" << app.manifest().packageName << "\"\n";
    }
    for (const auto &a : app.manifest().activities) {
        os << "    activity " << a;
        if (a == app.manifest().mainActivity)
            os << " main";
        os << "\n";
    }
    for (const auto &s : app.manifest().services)
        os << "    service " << s.className << "\n";
    for (const auto &r : app.manifest().receivers) {
        os << "    receiver " << r.className;
        for (const auto &action : r.actions)
            os << " action \"" << action << "\"";
        os << "\n";
    }
    for (const auto &[activity, layout] : app.layouts()) {
        os << "    layout " << activity << " {\n";
        for (const auto &w : layout.widgets()) {
            os << "        widget " << w.id << " \"" << w.name << "\" "
               << w.widgetClass;
            if (!w.xmlOnClick.empty())
                os << " onclick " << w.xmlOnClick;
            for (int dep : w.enabledAfter)
                os << " after " << dep;
            os << "\n";
        }
        os << "    }\n";
    }
    os << "}\n\n";

    for (const air::Klass *k : app.module().classes()) {
        if (k->isFramework() || k->isSynthetic())
            continue;
        os << air::printKlass(*k, with_bodies) << "\n";
    }
    return os.str();
}

} // namespace sierra::framework
