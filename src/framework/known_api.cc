#include "known_api.hh"

#include <iterator>
#include <unordered_map>

#include "air/logging.hh"

namespace sierra::framework {

const char *
apiKindName(ApiKind k)
{
    switch (k) {
      case ApiKind::None: return "none";
      case ApiKind::HandlerPost: return "handler-post";
      case ApiKind::HandlerSendMessage: return "handler-send-message";
      case ApiKind::HandlerRemove: return "handler-remove";
      case ApiKind::ViewPost: return "view-post";
      case ApiKind::RunOnUiThread: return "run-on-ui-thread";
      case ApiKind::AsyncTaskExecute: return "async-task-execute";
      case ApiKind::ThreadStart: return "thread-start";
      case ApiKind::ExecutorExecute: return "executor-execute";
      case ApiKind::MessageObtain: return "message-obtain";
      case ApiKind::FindViewById: return "find-view-by-id";
      case ApiKind::SetListener: return "set-listener";
      case ApiKind::SetContentView: return "set-content-view";
      case ApiKind::RegisterReceiver: return "register-receiver";
      case ApiKind::UnregisterReceiver: return "unregister-receiver";
      case ApiKind::SendBroadcast: return "send-broadcast";
      case ApiKind::StartService: return "start-service";
      case ApiKind::BindService: return "bind-service";
      case ApiKind::StartActivity: return "start-activity";
      case ApiKind::IntentSetClass: return "intent-set-class";
      case ApiKind::PendingIntentGetActivity:
        return "pending-intent-get-activity";
      case ApiKind::PendingIntentGetService:
        return "pending-intent-get-service";
      case ApiKind::PendingIntentGetBroadcast:
        return "pending-intent-get-broadcast";
      case ApiKind::PendingIntentSend: return "pending-intent-send";
      case ApiKind::LooperMain: return "looper-main";
      case ApiKind::HandlerThreadGetLooper:
        return "handler-thread-get-looper";
      case ApiKind::LooperMy: return "looper-my";
      case ApiKind::HandlerInit: return "handler-init";
      case ApiKind::ThreadInit: return "thread-init";
      case ApiKind::ObjectInit: return "object-init";
      case ApiKind::NullCheck: return "null-check";
    }
    panic("unreachable api kind");
}

namespace {

struct ApiEntry {
    const char *className;
    const char *methodName;
    ApiKind kind;
};

const ApiEntry kApiTable[] = {
    {names::handler, "post", ApiKind::HandlerPost},
    {names::handler, "postDelayed", ApiKind::HandlerPost},
    {names::handler, "postAtFrontOfQueue", ApiKind::HandlerPost},
    {names::handler, "sendMessage", ApiKind::HandlerSendMessage},
    {names::handler, "sendMessageDelayed", ApiKind::HandlerSendMessage},
    {names::handler, "sendEmptyMessage", ApiKind::HandlerSendMessage},
    {names::handler, "removeCallbacks", ApiKind::HandlerRemove},
    {names::handler, "removeMessages", ApiKind::HandlerRemove},
    {names::handler, "<init>", ApiKind::HandlerInit},
    {names::handler, "obtainMessage", ApiKind::MessageObtain},
    {names::thread, "<init>", ApiKind::ThreadInit},
    {names::view, "post", ApiKind::ViewPost},
    {names::view, "postDelayed", ApiKind::ViewPost},
    {names::activity, "runOnUiThread", ApiKind::RunOnUiThread},
    {names::asyncTask, "execute", ApiKind::AsyncTaskExecute},
    {names::thread, "start", ApiKind::ThreadStart},
    {names::executor, "execute", ApiKind::ExecutorExecute},
    {names::message, "obtain", ApiKind::MessageObtain},
    {names::activity, "findViewById", ApiKind::FindViewById},
    {names::view, "findViewById", ApiKind::FindViewById},
    {names::activity, "setContentView", ApiKind::SetContentView},
    {names::activity, "registerReceiver", ApiKind::RegisterReceiver},
    {names::activity, "unregisterReceiver", ApiKind::UnregisterReceiver},
    {names::service, "registerReceiver", ApiKind::RegisterReceiver},
    {names::service, "unregisterReceiver", ApiKind::UnregisterReceiver},
    {names::activity, "sendBroadcast", ApiKind::SendBroadcast},
    {names::service, "sendBroadcast", ApiKind::SendBroadcast},
    {names::activity, "startService", ApiKind::StartService},
    {names::activity, "bindService", ApiKind::BindService},
    {names::activity, "startActivity", ApiKind::StartActivity},
    {names::service, "startActivity", ApiKind::StartActivity},
    {names::intent, "setClassName", ApiKind::IntentSetClass},
    {names::pendingIntent, "getActivity",
     ApiKind::PendingIntentGetActivity},
    {names::pendingIntent, "getService",
     ApiKind::PendingIntentGetService},
    {names::pendingIntent, "getBroadcast",
     ApiKind::PendingIntentGetBroadcast},
    {names::pendingIntent, "send", ApiKind::PendingIntentSend},
    {names::looper, "getMainLooper", ApiKind::LooperMain},
    {names::handlerThread, "getLooper",
     ApiKind::HandlerThreadGetLooper},
    {names::looper, "myLooper", ApiKind::LooperMy},
    {names::object, "<init>", ApiKind::ObjectInit},
    {names::objects, "isNull", ApiKind::NullCheck},
    {names::objects, "nonNull", ApiKind::NullCheck},
    {names::objects, "requireNonNull", ApiKind::NullCheck},
    {names::textUtils, "isEmpty", ApiKind::NullCheck},
};

} // namespace

ApiKind
KnownApis::classifyExact(const std::string &class_name,
                         const std::string &method_name)
{
    // Built once on first use: classifyExact runs for every invoke the
    // pointer analysis visits, so the former linear table scan was on
    // the hot path. Keys are "class\0method" (the separator cannot
    // occur in either name).
    static const std::unordered_map<std::string, ApiKind> index = [] {
        std::unordered_map<std::string, ApiKind> m;
        m.reserve(std::size(kApiTable));
        for (const auto &e : kApiTable) {
            m.emplace(std::string(e.className) + '\0' + e.methodName,
                      e.kind);
        }
        return m;
    }();
    auto it = index.find(class_name + '\0' + method_name);
    if (it != index.end())
        return it->second;
    // Any setXxxListener on a View subclass counts as SetListener.
    if (!listenerCallback(method_name).empty())
        return ApiKind::SetListener;
    return ApiKind::None;
}

bool
KnownApis::isListenerClear(const air::Method &method, int instr_idx)
{
    const air::Instruction &call = method.instr(instr_idx);
    if (!call.isInvoke() || call.srcs.size() < 2)
        return false;
    if (listenerCallback(call.method.methodName).empty())
        return false;

    // Follow the listener argument backward through moves. Abort at
    // any branch, terminator, or jump target: past a control-flow
    // join the register may hold a value from another path, and the
    // answer must hold on *every* execution of the call.
    const int n = static_cast<int>(method.instrs().size());
    std::vector<char> is_target(n, 0);
    for (const air::Instruction &in : method.instrs()) {
        if (in.isBranch() && in.target >= 0 && in.target < n)
            is_target[in.target] = 1;
    }
    int reg = call.srcs[1];
    for (int i = instr_idx - 1; i >= 0; --i) {
        if (is_target[i + 1])
            return false; // another path joins before the call
        const air::Instruction &in = method.instr(i);
        if (in.isBranch() || in.isTerminator())
            return false;
        if (in.dst == reg) {
            if (in.op == air::Opcode::ConstNull)
                return true;
            if (in.op == air::Opcode::Move) {
                reg = in.srcs[0];
                continue;
            }
            return false;
        }
    }
    return false;
}

std::string
KnownApis::listenerCallback(const std::string &method_name)
{
    static const std::unordered_map<std::string, std::string> table = {
        {"setOnClickListener", "onClick"},
        {"setOnLongClickListener", "onLongClick"},
        {"setOnScrollListener", "onScroll"},
        {"setOnItemClickListener", "onItemClick"},
        {"setOnItemSelectedListener", "onItemSelected"},
        {"setOnTouchListener", "onTouch"},
        {"setOnKeyListener", "onKey"},
        {"setOnFocusChangeListener", "onFocusChange"},
        {"setOnCheckedChangeListener", "onCheckedChanged"},
        {"setOnEditorActionListener", "onEditorAction"},
    };
    auto it = table.find(method_name);
    return it == table.end() ? std::string() : it->second;
}

std::string
KnownApis::resolveDeclaringFrameworkClass(const air::MethodRef &ref) const
{
    // Walk the super chain from the named class upward, looking for the
    // framework class that declares the method.
    const air::Klass *k = _module.getClass(ref.className);
    // Unknown class: treat the name itself as the declaring class so
    // direct framework references (e.g. android.os.Looper.getMainLooper)
    // classify even when the framework model was not installed.
    if (!k)
        return ref.className;
    while (k) {
        if (k->findMethod(ref.methodName)) {
            // The first declaration up the chain wins: a user-defined
            // override (e.g. a subclass constructor or a custom run())
            // is a normal call, not a framework intrinsic.
            return k->isFramework() ? k->name() : "";
        }
        if (k->superName().empty())
            break;
        k = _module.getClass(k->superName());
    }
    return "";
}

ApiKind
KnownApis::classify(const air::MethodRef &ref) const
{
    // Try the literal reference first (covers static calls and calls
    // through framework-typed variables).
    ApiKind kind = classifyExact(ref.className, ref.methodName);
    if (kind != ApiKind::None)
        return kind;
    std::string declaring = resolveDeclaringFrameworkClass(ref);
    if (declaring.empty())
        return ApiKind::None;
    return classifyExact(declaring, ref.methodName);
}

bool
KnownApis::isSubclassOf(const std::string &class_name,
                        const std::string &framework_class) const
{
    const air::Klass *k = _module.getClass(class_name);
    while (k) {
        if (k->name() == framework_class)
            return true;
        for (const auto &iface : k->interfaces()) {
            if (iface == framework_class ||
                isSubclassOf(iface, framework_class)) {
                return true;
            }
        }
        if (k->superName().empty())
            return false;
        k = _module.getClass(k->superName());
    }
    return class_name == framework_class;
}

namespace {

using air::Type;

/** Declare a bodyless framework method. */
void
native(air::Klass *k, const std::string &name,
       std::vector<Type> params = {}, Type ret = Type::voidTy())
{
    k->addMethod(name, std::move(params), ret, false);
}

void
nativeStatic(air::Klass *k, const std::string &name,
             std::vector<Type> params = {}, Type ret = Type::voidTy())
{
    k->addMethod(name, std::move(params), ret, true);
}

} // namespace

void
installFrameworkModel(air::Module &module)
{
    auto have = [&](const char *n) { return module.getClass(n) != nullptr; };
    Type obj_t = Type::object(names::object);
    Type int_t = Type::intTy();
    Type str_t = Type::strTy();

    if (!have(names::object)) {
        auto *k = module.addClass(names::object);
        native(k, "<init>");
        native(k, "toString", {}, str_t);
        native(k, "equals", {obj_t}, Type::boolTy());
    }
    if (!have(names::runnable)) {
        auto *k = module.addClass(names::runnable, names::object);
        k->setInterface(true);
        auto *m = k->addMethod("run", {}, Type::voidTy(), false);
        m->setAbstract(true);
    }
    if (!have(names::thread)) {
        auto *k = module.addClass(names::thread, names::object);
        k->addInterface(names::runnable);
        native(k, "<init>", {Type::object(names::runnable)});
        native(k, "start");
        native(k, "run");
        native(k, "join");
        native(k, "interrupt");
    }
    if (!have(names::executor)) {
        auto *k = module.addClass(names::executor, names::object);
        k->setInterface(true);
        auto *m = k->addMethod("execute", {Type::object(names::runnable)},
                               Type::voidTy(), false);
        m->setAbstract(true);
    }
    if (!have(names::handlerThread)) {
        auto *k = module.addClass(names::handlerThread, names::thread);
        native(k, "<init>", {str_t});
        native(k, "getLooper", {}, Type::object(names::looper));
        native(k, "quit");
    }
    if (!have(names::looper)) {
        auto *k = module.addClass(names::looper, names::object);
        nativeStatic(k, "getMainLooper", {}, Type::object(names::looper));
        nativeStatic(k, "myLooper", {}, Type::object(names::looper));
        native(k, "quit");
    }
    if (!have(names::message)) {
        auto *k = module.addClass(names::message, names::object);
        k->addField({"what", int_t, false});
        k->addField({"arg1", int_t, false});
        k->addField({"arg2", int_t, false});
        k->addField({"obj", obj_t, false});
        nativeStatic(k, "obtain", {}, Type::object(names::message));
        native(k, "getExtras", {}, Type::object(names::bundle));
    }
    if (!have(names::handler)) {
        auto *k = module.addClass(names::handler, names::object);
        Type run_t = Type::object(names::runnable);
        Type msg_t = Type::object(names::message);
        native(k, "<init>", {Type::object(names::looper)});
        native(k, "post", {run_t});
        native(k, "postDelayed", {run_t, int_t});
        native(k, "postAtFrontOfQueue", {run_t});
        native(k, "sendMessage", {msg_t});
        native(k, "sendMessageDelayed", {msg_t, int_t});
        native(k, "sendEmptyMessage", {int_t});
        native(k, "removeCallbacks", {run_t});
        native(k, "removeMessages", {int_t});
        native(k, "handleMessage", {msg_t});
        native(k, "obtainMessage", {int_t}, msg_t);
    }
    if (!have(names::asyncTask)) {
        auto *k = module.addClass(names::asyncTask, names::object);
        native(k, "<init>");
        native(k, "execute");
        auto *dib = k->addMethod("doInBackground", {}, obj_t, false);
        dib->setAbstract(true);
        native(k, "onPreExecute");
        native(k, "onPostExecute", {obj_t});
        native(k, "onProgressUpdate", {int_t});
        native(k, "publishProgress", {int_t});
        native(k, "cancel", {Type::boolTy()});
    }
    if (!have(names::intent)) {
        auto *k = module.addClass(names::intent, names::object);
        native(k, "<init>", {str_t});
        native(k, "getExtras", {}, Type::object(names::bundle));
        native(k, "putExtra", {str_t, obj_t});
        native(k, "getAction", {}, str_t);
        native(k, "setClassName", {str_t},
               Type::object(names::intent));
    }
    if (!have(names::pendingIntent)) {
        auto *k = module.addClass(names::pendingIntent, names::object);
        Type intent_t = Type::object(names::intent);
        Type pending_t = Type::object(names::pendingIntent);
        nativeStatic(k, "getActivity", {intent_t}, pending_t);
        nativeStatic(k, "getService", {intent_t}, pending_t);
        nativeStatic(k, "getBroadcast", {intent_t}, pending_t);
        native(k, "send");
    }
    if (!have(names::bundle)) {
        auto *k = module.addClass(names::bundle, names::object);
        native(k, "<init>");
        native(k, "get", {str_t}, obj_t);
        native(k, "put", {str_t, obj_t});
        native(k, "getInt", {str_t}, int_t);
    }
    if (!have(names::view)) {
        auto *k = module.addClass(names::view, names::object);
        native(k, "<init>");
        native(k, "findViewById", {int_t}, Type::object(names::view));
        native(k, "post", {Type::object(names::runnable)});
        native(k, "postDelayed", {Type::object(names::runnable), int_t});
        native(k, "setOnClickListener",
               {Type::object(names::onClickListener)});
        native(k, "setOnLongClickListener", {obj_t});
        native(k, "setOnScrollListener",
               {Type::object(names::onScrollListener)});
        native(k, "setOnItemClickListener",
               {Type::object(names::onItemClickListener)});
        native(k, "setOnTouchListener", {obj_t});
        native(k, "setOnKeyListener", {obj_t});
        native(k, "setOnFocusChangeListener", {obj_t});
        native(k, "setOnCheckedChangeListener", {obj_t});
        native(k, "setOnEditorActionListener", {obj_t});
        native(k, "setOnItemSelectedListener", {obj_t});
        native(k, "setVisibility", {int_t});
        native(k, "invalidate");
        native(k, "getId", {}, int_t);
    }
    if (!have(names::onClickListener)) {
        auto *k = module.addClass(names::onClickListener, names::object);
        k->setInterface(true);
        auto *m = k->addMethod("onClick", {Type::object(names::view)},
                               Type::voidTy(), false);
        m->setAbstract(true);
    }
    if (!have(names::onScrollListener)) {
        auto *k = module.addClass(names::onScrollListener, names::object);
        k->setInterface(true);
        auto *m = k->addMethod("onScroll", {Type::object(names::view)},
                               Type::voidTy(), false);
        m->setAbstract(true);
    }
    if (!have(names::onItemClickListener)) {
        auto *k =
            module.addClass(names::onItemClickListener, names::object);
        k->setInterface(true);
        auto *m = k->addMethod("onItemClick",
                               {Type::object(names::view), int_t},
                               Type::voidTy(), false);
        m->setAbstract(true);
    }
    if (!have(names::serviceConnection)) {
        auto *k =
            module.addClass(names::serviceConnection, names::object);
        k->setInterface(true);
        auto *m1 = k->addMethod("onServiceConnected", {obj_t},
                                Type::voidTy(), false);
        m1->setAbstract(true);
        auto *m2 = k->addMethod("onServiceDisconnected", {obj_t},
                                Type::voidTy(), false);
        m2->setAbstract(true);
    }
    if (!have(names::activity)) {
        auto *k = module.addClass(names::activity, names::object);
        Type intent_t = Type::object(names::intent);
        native(k, "<init>");
        native(k, "onCreate");
        native(k, "onStart");
        native(k, "onResume");
        native(k, "onPause");
        native(k, "onStop");
        native(k, "onRestart");
        native(k, "onDestroy");
        native(k, "findViewById", {int_t}, Type::object(names::view));
        native(k, "setContentView", {int_t});
        native(k, "runOnUiThread", {Type::object(names::runnable)});
        native(k, "registerReceiver",
               {Type::object(names::receiver), str_t});
        native(k, "unregisterReceiver", {Type::object(names::receiver)});
        native(k, "sendBroadcast", {intent_t});
        native(k, "startService", {intent_t});
        native(k, "bindService",
               {intent_t, Type::object(names::serviceConnection)});
        native(k, "startActivity", {intent_t});
        native(k, "finish");
        native(k, "getApplicationContext", {}, obj_t);
    }
    if (!have(names::service)) {
        auto *k = module.addClass(names::service, names::object);
        Type intent_t = Type::object(names::intent);
        native(k, "<init>");
        native(k, "onCreate");
        native(k, "onStartCommand", {intent_t}, int_t);
        native(k, "onDestroy");
        native(k, "onBind", {intent_t}, obj_t);
        native(k, "sendBroadcast", {intent_t});
        native(k, "registerReceiver",
               {Type::object(names::receiver), str_t});
        native(k, "unregisterReceiver", {Type::object(names::receiver)});
        native(k, "stopSelf");
    }
    if (!have(names::receiver)) {
        auto *k = module.addClass(names::receiver, names::object);
        native(k, "<init>");
        auto *m = k->addMethod(
            "onReceive", {obj_t, Type::object(names::intent)},
            Type::voidTy(), false);
        m->setAbstract(true);
    }
    if (!have(names::baseAdapter)) {
        auto *k = module.addClass(names::baseAdapter, names::object);
        native(k, "<init>");
        native(k, "notifyDataSetChanged");
        native(k, "add", {obj_t});
        native(k, "clear");
        native(k, "getCount", {}, int_t);
        native(k, "getItem", {int_t}, obj_t);
    }
    if (!have(names::textView)) {
        auto *k = module.addClass(names::textView, names::view);
        native(k, "<init>");
        native(k, "setText", {str_t});
        native(k, "getText", {}, str_t);
    }
    if (!have(names::button)) {
        auto *k = module.addClass(names::button, names::textView);
        native(k, "<init>");
    }
    if (!have(names::listView)) {
        auto *k = module.addClass(names::listView, names::view);
        native(k, "<init>");
        native(k, "setAdapter", {Type::object(names::baseAdapter)});
        native(k, "getAdapter", {}, Type::object(names::baseAdapter));
    }
    if (!have(names::objects)) {
        auto *k = module.addClass(names::objects, names::object);
        nativeStatic(k, "isNull", {obj_t}, Type::boolTy());
        nativeStatic(k, "nonNull", {obj_t}, Type::boolTy());
        nativeStatic(k, "requireNonNull", {obj_t}, obj_t);
    }
    if (!have(names::textUtils)) {
        auto *k = module.addClass(names::textUtils, names::object);
        nativeStatic(k, "isEmpty", {str_t}, Type::boolTy());
    }
    if (!have(names::recycleView)) {
        auto *k = module.addClass(names::recycleView, names::view);
        native(k, "<init>");
        native(k, "setAdapter", {Type::object(names::baseAdapter)});
        native(k, "getAdapter", {}, Type::object(names::baseAdapter));
        native(k, "getViewForPosition", {int_t},
               Type::object(names::view));
    }
}

} // namespace sierra::framework
