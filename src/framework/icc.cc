#include "icc.hh"

#include <algorithm>
#include <map>
#include <set>

#include "air/klass.hh"
#include "air/logging.hh"
#include "air/method.hh"

namespace sierra::framework {

namespace {

/** Target payload a PendingIntent register (or field) carries. */
struct PendingInfo {
    std::string target;
    IccTargetKind kind{IccTargetKind::Activity};
};

} // namespace

/** Field-stored PendingIntents, collected module-wide in a first pass
 *  so a PendingIntent created in onCreate and fired from a later
 *  callback still resolves (RAICC's "atypical ICC"). A field written
 *  with two different targets is conflicted and dropped. */
struct IccModel::PendingFields {
    std::map<std::string, PendingInfo> byField; //!< FieldRef key
    std::set<std::string> conflicted;
};

const char *
iccTargetKindName(IccTargetKind k)
{
    switch (k) {
      case IccTargetKind::Activity: return "activity";
      case IccTargetKind::Service: return "service";
      case IccTargetKind::Broadcast: return "broadcast";
    }
    return "?";
}

std::string
IccSite::toString() const
{
    return strCat(pending ? "pending " : "", iccTargetKindName(targetKind),
                  " icc ", senderClass, " -> ",
                  resolved() ? targetClass : std::string("<implicit>"),
                  " at ", method ? method->qualifiedName() : "?", "@",
                  instrIdx);
}

IccModel::IccModel(const App &app) : _app(app)
{
    KnownApis apis(app.module());
    // Pass 1 collects field-stored PendingIntent targets; pass 2
    // resolves call sites with those field facts available.
    PendingFields fields;
    for (const air::Klass *k : app.module().classes()) {
        for (const auto &m : k->methods()) {
            if (m->hasBody())
                scanMethod(m.get(), apis, fields, /*collect=*/true);
        }
    }
    for (const std::string &f : fields.conflicted)
        fields.byField.erase(f);
    for (const air::Klass *k : app.module().classes()) {
        for (const auto &m : k->methods()) {
            if (m->hasBody())
                scanMethod(m.get(), apis, fields, /*collect=*/false);
        }
    }
    std::set<std::pair<std::string, std::string>> edges;
    for (const IccSite &s : _sites) {
        ++_stats.callSites;
        if (s.resolved())
            ++_stats.resolved;
        else
            ++_stats.unresolved;
        if (s.pending)
            ++_stats.pendingSites;
        if (s.resolved() && s.targetKind == IccTargetKind::Activity &&
            s.targetClass != s.senderClass)
            edges.insert({s.senderClass, s.targetClass});
    }
    _stats.activityEdges = static_cast<int64_t>(edges.size());
}

void
IccModel::scanMethod(const air::Method *m, const KnownApis &apis,
                     PendingFields &fields, bool collect)
{
    // Linear register scan; joins at merge points are ignored, which
    // only loses targets assigned on one branch — under-approximation
    // is fine, every resolved edge is real.
    std::map<int, std::string> str_of;    //!< reg -> string constant
    std::map<int, std::string> intent_of; //!< reg -> intent target ("" ok)
    std::map<int, PendingInfo> pending_of;

    auto forget = [&](int reg) {
        str_of.erase(reg);
        intent_of.erase(reg);
        pending_of.erase(reg);
    };
    auto strAt = [&](int reg) -> std::string {
        auto it = str_of.find(reg);
        return it == str_of.end() ? std::string() : it->second;
    };
    auto intentAt = [&](int reg) -> std::string {
        auto it = intent_of.find(reg);
        return it == intent_of.end() ? std::string() : it->second;
    };
    // A target is only "resolved" when the manifest declares a
    // matching component: the string could otherwise be any extra.
    auto manifestTarget = [&](const std::string &cls,
                              IccTargetKind kind) -> std::string {
        if (cls.empty())
            return {};
        const Manifest &mf = _app.manifest();
        switch (kind) {
          case IccTargetKind::Activity:
            return mf.hasActivity(cls) ? cls : std::string();
          case IccTargetKind::Service:
            for (const auto &s : mf.services) {
                if (s.className == cls)
                    return cls;
            }
            return {};
          case IccTargetKind::Broadcast:
            for (const auto &r : mf.receivers) {
                if (r.className == cls)
                    return cls;
            }
            return {};
        }
        return {};
    };
    auto record = [&](int idx, ApiKind kind, IccTargetKind tk,
                      const std::string &target, bool pending) {
        if (collect)
            return;
        IccSite s;
        s.method = m;
        s.instrIdx = idx;
        s.kind = kind;
        s.targetKind = tk;
        // Exact owner class: corpus class names use '$' as a plain
        // uniquifier, not an inner-class separator, so no stripping.
        s.senderClass = m->owner()->name();
        s.targetClass = manifestTarget(target, tk);
        s.pending = pending;
        _sites.push_back(std::move(s));
    };

    for (int i = 0; i < m->numInstrs(); ++i) {
        const air::Instruction &instr = m->instr(i);
        switch (instr.op) {
          case air::Opcode::ConstStr:
            forget(instr.dst);
            str_of[instr.dst] = instr.strValue;
            continue;
          case air::Opcode::Move: {
            int src = instr.srcs[0];
            bool same = src == instr.dst;
            if (!same) {
                forget(instr.dst);
                if (str_of.count(src))
                    str_of[instr.dst] = str_of[src];
                if (intent_of.count(src))
                    intent_of[instr.dst] = intent_of[src];
                if (pending_of.count(src))
                    pending_of[instr.dst] = pending_of[src];
            }
            continue;
          }
          case air::Opcode::New:
            forget(instr.dst);
            if (instr.typeName == names::intent)
                intent_of[instr.dst] = ""; // target not yet known
            continue;
          case air::Opcode::PutField:
            if (collect && pending_of.count(instr.srcs[1])) {
                const std::string key = instr.field.toString();
                auto it = fields.byField.find(key);
                const PendingInfo &info = pending_of[instr.srcs[1]];
                if (it == fields.byField.end())
                    fields.byField[key] = info;
                else if (it->second.target != info.target ||
                         it->second.kind != info.kind)
                    fields.conflicted.insert(key);
            }
            continue;
          case air::Opcode::GetField: {
            forget(instr.dst);
            auto it = fields.byField.find(instr.field.toString());
            if (it != fields.byField.end())
                pending_of[instr.dst] = it->second;
            continue;
          }
          case air::Opcode::Invoke:
            break; // handled below
          default:
            if (instr.dst >= 0)
                forget(instr.dst);
            continue;
        }

        // Intent.<init>(str): the constructor is an invoke-special on
        // the framework class, so classify() maps it to ObjectInit —
        // match the receiver's tracked Intent directly instead.
        if (instr.invokeKind == air::InvokeKind::Special &&
            instr.method.methodName == "<init>" &&
            instr.srcs.size() >= 2 && intent_of.count(instr.srcs[0])) {
            intent_of[instr.srcs[0]] = strAt(instr.srcs[1]);
            continue;
        }

        ApiKind kind = apis.classify(instr.method);
        switch (kind) {
          case ApiKind::IntentSetClass: {
            std::string target = instr.srcs.size() >= 2
                                     ? strAt(instr.srcs[1])
                                     : std::string();
            intent_of[instr.srcs[0]] = target;
            if (instr.dst >= 0) { // returns this for chaining
                forget(instr.dst);
                intent_of[instr.dst] = target;
            }
            continue;
          }
          case ApiKind::StartActivity:
            record(i, kind, IccTargetKind::Activity,
                   instr.srcs.size() >= 2 ? intentAt(instr.srcs[1])
                                          : std::string(),
                   false);
            continue;
          case ApiKind::StartService:
            record(i, kind, IccTargetKind::Service,
                   instr.srcs.size() >= 2 ? intentAt(instr.srcs[1])
                                          : std::string(),
                   false);
            continue;
          case ApiKind::SendBroadcast:
            record(i, kind, IccTargetKind::Broadcast,
                   instr.srcs.size() >= 2 ? intentAt(instr.srcs[1])
                                          : std::string(),
                   false);
            continue;
          case ApiKind::PendingIntentGetActivity:
          case ApiKind::PendingIntentGetService:
          case ApiKind::PendingIntentGetBroadcast: {
            IccTargetKind tk =
                kind == ApiKind::PendingIntentGetActivity
                    ? IccTargetKind::Activity
                    : kind == ApiKind::PendingIntentGetService
                          ? IccTargetKind::Service
                          : IccTargetKind::Broadcast;
            if (instr.dst >= 0) {
                forget(instr.dst);
                pending_of[instr.dst] = {
                    instr.srcs.empty() ? std::string()
                                       : intentAt(instr.srcs[0]),
                    tk};
            }
            continue;
          }
          case ApiKind::PendingIntentSend: {
            PendingInfo info;
            if (!instr.srcs.empty() &&
                pending_of.count(instr.srcs[0]))
                info = pending_of[instr.srcs[0]];
            record(i, kind, info.kind, info.target, true);
            continue;
          }
          default:
            if (instr.dst >= 0)
                forget(instr.dst);
            continue;
        }
    }
}

std::vector<std::string>
IccModel::activityTargetsOf(const std::string &activity) const
{
    std::set<std::string> targets;
    for (const IccSite &s : _sites) {
        if (s.resolved() && s.targetKind == IccTargetKind::Activity &&
            s.senderClass == activity && s.targetClass != activity)
            targets.insert(s.targetClass);
    }
    return {targets.begin(), targets.end()};
}

} // namespace sierra::framework
