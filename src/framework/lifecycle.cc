#include "lifecycle.hh"

#include <algorithm>

#include "air/logging.hh"

namespace sierra::framework {

const char *
lifecycleStateName(LifecycleState s)
{
    switch (s) {
      case LifecycleState::Launched: return "Launched";
      case LifecycleState::Created: return "Created";
      case LifecycleState::Started: return "Started";
      case LifecycleState::Resumed: return "Resumed";
      case LifecycleState::Paused: return "Paused";
      case LifecycleState::Stopped: return "Stopped";
      case LifecycleState::Destroyed: return "Destroyed";
    }
    panic("unreachable lifecycle state");
}

LifecycleModel::LifecycleModel()
{
    using S = LifecycleState;
    _transitions = {
        {S::Launched, S::Created, "onCreate"},
        {S::Created, S::Started, "onStart"},
        {S::Started, S::Resumed, "onResume"},
        {S::Resumed, S::Paused, "onPause"},
        {S::Paused, S::Resumed, "onResume"},
        {S::Paused, S::Stopped, "onStop"},
        // onRestart leads back to Started (Android routes through
        // onRestart -> onStart; we model the composite edge plus the
        // explicit onRestart callback).
        {S::Stopped, S::Started, "onRestart"},
        {S::Stopped, S::Destroyed, "onDestroy"},
    };
    for (const auto &t : _transitions) {
        if (std::find(_callbackNames.begin(), _callbackNames.end(),
                      t.callback) == _callbackNames.end()) {
            _callbackNames.push_back(t.callback);
        }
    }
    // onStart appears once above but onRestart implies a second onStart;
    // callbackNames is the set, which already contains it.
}

bool
LifecycleModel::isLifecycleCallback(const std::string &name) const
{
    return std::find(_callbackNames.begin(), _callbackNames.end(), name) !=
           _callbackNames.end();
}

std::vector<LifecycleTransition>
LifecycleModel::transitionsFrom(LifecycleState s) const
{
    std::vector<LifecycleTransition> out;
    for (const auto &t : _transitions) {
        if (t.from == s)
            out.push_back(t);
    }
    return out;
}

std::vector<std::string>
LifecycleModel::entrySequence()
{
    return {"onCreate", "onStart", "onResume"};
}

std::vector<std::string>
LifecycleModel::exitSequence()
{
    return {"onPause", "onStop", "onDestroy"};
}

std::vector<std::pair<std::string, std::string>>
LifecycleModel::cyclePairs()
{
    return {{"onResume", "onPause"}, {"onStart", "onStop"}};
}

} // namespace sierra::framework
