#include "layout.hh"

namespace sierra::framework {

const Widget *
Layout::byId(int id) const
{
    for (const auto &w : _widgets) {
        if (w.id == id)
            return &w;
    }
    return nullptr;
}

const Widget *
Layout::byName(const std::string &name) const
{
    for (const auto &w : _widgets) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

} // namespace sierra::framework
