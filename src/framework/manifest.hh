/**
 * @file
 * App manifest model (AndroidManifest.xml analogue).
 */

#ifndef SIERRA_FRAMEWORK_MANIFEST_HH
#define SIERRA_FRAMEWORK_MANIFEST_HH

#include <string>
#include <vector>

namespace sierra::framework {

/** A broadcast receiver declaration. */
struct ReceiverSpec {
    std::string className;
    std::vector<std::string> actions; //!< intent actions it subscribes to
    bool declaredInManifest{true};    //!< false = registered in code only
};

/** A service declaration. */
struct ServiceSpec {
    std::string className;
};

/** The manifest of one app. */
struct Manifest {
    std::string packageName;
    std::vector<std::string> activities;
    std::string mainActivity; //!< the LAUNCHER activity
    std::vector<ReceiverSpec> receivers;
    std::vector<ServiceSpec> services;

    bool
    hasActivity(const std::string &name) const
    {
        for (const auto &a : activities) {
            if (a == name)
                return true;
        }
        return false;
    }
};

} // namespace sierra::framework

#endif // SIERRA_FRAMEWORK_MANIFEST_HH
