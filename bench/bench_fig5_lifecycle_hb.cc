/**
 * @file
 * Paper Fig. 5: HB edges among Activity lifecycle callbacks induced by
 * dominance in the harness model, including the "1"/"2" instance split
 * of cyclic callbacks.
 */

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Fig. 5: lifecycle HB via harness dominance");

    corpus::AppFactory factory("fig5-lifecycle");
    factory.addActivity("LifecycleActivity");
    corpus::BuiltApp built = factory.finish();
    SierraDetector detector(*built.app);
    HarnessAnalysis ha =
        detector.analyzeActivity("LifecycleActivity", {});

    // Collect lifecycle actions with per-callback instance numbering.
    struct Entry {
        int id;
        std::string label;
    };
    std::vector<Entry> entries;
    std::map<std::string, int> instance;
    for (const auto &a : ha.pta->actions.all()) {
        if (a.kind != analysis::ActionKind::Lifecycle)
            continue;
        int n = ++instance[a.callbackName];
        entries.push_back(
            {a.id, a.callbackName + " \"" + std::to_string(n) + "\""});
    }

    std::printf("%-16s", "");
    for (const auto &e : entries)
        std::printf("%-15s", e.label.c_str());
    std::printf("\n");
    for (const auto &from : entries) {
        std::printf("%-16s", from.label.c_str());
        for (const auto &to : entries) {
            const char *mark = ".";
            if (from.id != to.id) {
                if (ha.shbg->reaches(from.id, to.id))
                    mark = "<";
                else if (ha.shbg->reaches(to.id, from.id))
                    mark = ">";
                else
                    mark = "-";
            }
            std::printf("%-15s", mark);
        }
        std::printf("\n");
    }

    std::printf("\nKey paper relations to verify:\n");
    auto check = [&](const char *what, int a, int b, bool expect_lt) {
        bool lt = ha.shbg->reaches(a, b);
        std::printf("  %-46s %s\n", what,
                    lt == expect_lt ? "ok" : "MISMATCH");
    };
    auto nth = [&](const std::string &cb, int n) {
        int seen = 0;
        for (const auto &a : ha.pta->actions.all()) {
            if (a.kind == analysis::ActionKind::Lifecycle &&
                a.callbackName == cb && ++seen == n) {
                return a.id;
            }
        }
        return -1;
    };
    check("onCreate < onDestroy", nth("onCreate", 1),
          nth("onDestroy", 1), true);
    check("onStart \"1\" < onStop (loop)", nth("onStart", 1),
          nth("onStop", 1), true);
    check("onStop (loop) < onStart \"2\"", nth("onStop", 1),
          nth("onStart", 2), true);
    check("onResume \"1\" < onPause (loop)", nth("onResume", 1),
          nth("onPause", 1), true);
    check("onPause (loop) < onResume \"2\"", nth("onPause", 1),
          nth("onResume", 2), true);
    check("onStart \"2\" NOT < onStop (loop)", nth("onStart", 2),
          nth("onStop", 1), false);
    return 0;
}
