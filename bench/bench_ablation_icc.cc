/**
 * @file
 * Ablation: RAICC-style inter-component (ICC) harness edges.
 *
 * Two configurations over the full corpus (20 named apps + the 174
 * F-Droid-analogue apps):
 *   - icc on (default): resolved explicit-Intent activity edges extend
 *     the sender's harness with the target's lifecycle, so races
 *     between components are in scope;
 *   - icc off: each component is analyzed against its own events only
 *     (the pre-ICC pipeline).
 *
 * With ICC on the pipeline must miss zero true races. With ICC off
 * exactly the seeded cross-component races (ground-truth keys marked
 * requiresIcc) go missing — nothing else — demonstrating the new
 * coverage is real and the edge model does not perturb
 * intra-component results.
 *
 * Emits one machine-readable `BENCH {...}` JSON line.
 */

#include <set>

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Ablation: inter-component (ICC) harness edges");

    struct Totals {
        int racy{0};
        int surviving{0};
        int missed{0};        //!< missed true keys, any kind
        int missedIccOnly{0}; //!< missed keys marked requiresIcc
        int iccOnlyKeys{0};   //!< requiresIcc keys seeded in the corpus
        int64_t callSites{0};
        int64_t resolved{0};
        int64_t activityEdges{0};
    };
    Totals totals[2]; // [0] = on, [1] = off

    std::printf("%-8s %8s %10s %8s %10s %9s %9s %7s\n", "config",
                "racy", "surviving", "missed", "icc-missed", "sites",
                "resolved", "edges");
    for (int c = 0; c < 2; ++c) {
        const bool enabled = c == 0;
        Totals &t = totals[c];
        auto run = [&](corpus::BuiltApp built) {
            SierraOptions opts;
            opts.icc = enabled;
            // ICC acts at harness generation: the options must reach
            // the constructor.
            SierraDetector detector(*built.app, opts);
            AppReport report = detector.analyze(opts);
            t.racy += report.racyPairs;
            t.surviving += report.afterRefutation;
            t.callSites += detector.iccStats().callSites;
            t.resolved += detector.iccStats().resolved;
            t.activityEdges += detector.iccStats().activityEdges;

            std::vector<std::string> surviving_keys;
            for (const auto &race : report.races) {
                if (!race.refuted)
                    surviving_keys.push_back(race.fieldKey);
            }
            corpus::Score score =
                corpus::scoreKeys(surviving_keys, built.truth);
            t.missed += score.missedTrueKeys;
            // Split the missed keys into cross-component and other.
            std::set<std::string> found(surviving_keys.begin(),
                                        surviving_keys.end());
            std::set<std::string> counted;
            for (const auto &seed : built.truth.seeded) {
                if (!counted.insert(seed.fieldKey).second)
                    continue;
                if (built.truth.isIccOnlyTrueKey(seed.fieldKey)) {
                    ++t.iccOnlyKeys;
                    if (!found.count(seed.fieldKey))
                        ++t.missedIccOnly;
                }
            }
        };
        for (const auto &spec : corpus::namedAppSpecs())
            run(corpus::buildNamedApp(spec));
        for (int i = 0; i < corpus::kFdroidAppCount; ++i)
            run(corpus::buildFdroidApp(i));
        std::printf("%-8s %8d %10d %8d %10d %9lld %9lld %7lld\n",
                    enabled ? "icc on" : "icc off", t.racy, t.surviving,
                    t.missed, t.missedIccOnly,
                    static_cast<long long>(t.callSites),
                    static_cast<long long>(t.resolved),
                    static_cast<long long>(t.activityEdges));
    }

    const Totals &on = totals[0];
    const Totals &off = totals[1];
    bool on_complete = on.missed == 0;
    // Off may miss exactly the cross-component keys, nothing else.
    bool off_scoped = off.missed == off.missedIccOnly &&
                      off.missedIccOnly == off.iccOnlyKeys &&
                      off.iccOnlyKeys > 0;
    std::printf("\nzero missed true races with ICC on: %s; ICC off "
                "misses exactly the %d cross-component keys: %s\n",
                on_complete ? "yes" : "NO (regression!)",
                off.iccOnlyKeys,
                off_scoped ? "yes" : "NO (regression!)");

    bench::benchJson(
        "ablation_icc",
        "{\"bench\":\"ablation_icc\",\"corpus\":%d,"
        "\"on\":{\"racy\":%d,\"surviving\":%d,\"missed\":%d,"
        "\"call_sites\":%lld,\"resolved\":%lld,"
        "\"activity_edges\":%lld},"
        "\"off\":{\"racy\":%d,\"surviving\":%d,\"missed\":%d,"
        "\"missed_icc_only\":%d},"
        "\"icc_only_keys\":%d,\"on_complete\":%s,\"off_scoped\":%s}",
        20 + corpus::kFdroidAppCount, on.racy, on.surviving, on.missed,
        static_cast<long long>(on.callSites),
        static_cast<long long>(on.resolved),
        static_cast<long long>(on.activityEdges), off.racy,
        off.surviving, off.missed, off.missedIccOnly, off.iccOnlyKeys,
        on_complete ? "true" : "false", off_scoped ? "true" : "false");
    return on_complete && off_scoped ? 0 : 1;
}
