/**
 * @file
 * Paper Fig. 6: HB edges induced by the GUI model -- onResume precedes
 * GUI events, GUI events precede the final onStop/onDestroy, and
 * layout flow constraints (enabledAfter) order dependent widgets.
 */

#include "bench_util.hh"
#include "corpus/patterns.hh"

int
main()
{
    using namespace sierra;
    bench::header("Fig. 6: GUI model HB edges");

    corpus::AppFactory factory("fig6-gui");
    auto &act = factory.addActivity("GuiActivity");
    corpus::addGuiFlowSafe(factory, act);   // pick -> confirm flow
    corpus::addMessageGuard(factory, act);  // two independent buttons
    corpus::BuiltApp built = factory.finish();

    SierraDetector detector(*built.app);
    HarnessAnalysis ha = detector.analyzeActivity("GuiActivity", {});

    int pick = bench::findAction(ha, "onPick");
    int confirm = bench::findAction(ha, "onConfirm");
    int send1 = bench::findAction(ha, "onSendOne");
    int send2 = bench::findAction(ha, "onSendTwo");
    // First onResume and final onStop.
    int resume1 = -1;
    int last_stop = -1;
    for (const auto &a : ha.pta->actions.all()) {
        if (a.callbackName == "onResume" && resume1 < 0)
            resume1 = a.id;
        if (a.callbackName == "onStop")
            last_stop = a.id;
    }

    auto show = [&](const char *what, bool value, bool expect) {
        std::printf("  %-46s %s (%s)\n", what, value ? "yes" : "no",
                    value == expect ? "ok" : "MISMATCH");
    };
    show("onResume \"1\" < onPick", ha.shbg->reaches(resume1, pick),
         true);
    show("onPick < onConfirm (enabledAfter)",
         ha.shbg->reaches(pick, confirm), true);
    show("onSendOne unordered with onSendTwo",
         ha.shbg->unordered(send1, send2), true);
    show("onPick < final onStop", ha.shbg->reaches(pick, last_stop),
         true);
    show("onConfirm < final onStop",
         ha.shbg->reaches(confirm, last_stop), true);
    show("onSendOne unordered with onPick",
         ha.shbg->unordered(send1, pick), true);

    std::printf("\nGUI-order rule edges: %d\n",
                ha.shbg->numEdgesByRule(hb::HbRule::GuiOrder));
    std::printf("surviving races on the pick/confirm field: %s\n",
                [&] {
                    for (const auto &p : ha.pairs) {
                        if (!p.refuted &&
                            p.loc.key.find("sel$") !=
                                std::string::npos) {
                            return "REPORTED (unexpected)";
                        }
                    }
                    return "none (ordered by the GUI model)";
                }());
    return 0;
}
