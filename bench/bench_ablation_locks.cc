/**
 * @file
 * Ablation: escape filter + lock-set refutation.
 *
 * Two configurations over the full corpus (20 named apps + the 174
 * F-Droid-analogue apps):
 *   - locks on (default): the escape analysis drops thread-local
 *     accesses before the quadratic pair loop and the lock-set stage
 *     refutes monitor-protected pairs before symbolic execution;
 *   - locks off: every access enters the pair loop and every pair
 *     reaches the symbolic refuter (the PR-2 pipeline).
 *
 * Both stages must be report-preserving on ground truth (zero missed
 * true races in either configuration) while strictly fewer pairs reach
 * the symbolic refuter with the stages on.
 *
 * Emits one machine-readable `BENCH {...}` JSON line.
 */

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Ablation: escape filter + lock-set refutation");

    struct Config {
        const char *name;
        bool locks;
    };
    const Config configs[] = {
        {"locks on", true},
        {"locks off", false},
    };

    struct Totals {
        int racy{0};
        int locksetRefuted{0};
        int toSymbolic{0}; //!< pairs the symbolic refuter must examine
        int surviving{0};
        int missed{0};
        int accessesDropped{0};
        double escapeMs{0};
        double locksetMs{0};
        double refutationMs{0};
    };
    Totals totals[2];

    std::printf("%-10s %8s %9s %11s %10s %8s %9s %11s %11s\n", "config",
                "racy", "lockset", "to-symbolic", "surviving", "missed",
                "dropped", "stage ms", "refute ms");
    for (int c = 0; c < 2; ++c) {
        Totals &t = totals[c];
        auto run = [&](corpus::BuiltApp built) {
            SierraDetector detector(*built.app);
            SierraOptions opts;
            opts.escapeFilter = configs[c].locks;
            opts.locksetRefutation = configs[c].locks;
            AppReport report = detector.analyze(opts);
            t.racy += report.racyPairs;
            t.locksetRefuted += report.locksetRefuted;
            t.toSymbolic += report.racyPairs - report.locksetRefuted;
            t.surviving += report.afterRefutation;
            t.accessesDropped += report.accessesDropped;
            t.missed +=
                corpus::scoreReport(report, built.truth).missedTrueKeys;
            t.escapeMs += report.times.escape * 1e3;
            t.locksetMs += report.times.lockset * 1e3;
            t.refutationMs += report.times.refutation * 1e3;
        };
        for (const auto &spec : corpus::namedAppSpecs())
            run(corpus::buildNamedApp(spec));
        for (int i = 0; i < corpus::kFdroidAppCount; ++i)
            run(corpus::buildFdroidApp(i));
        std::printf(
            "%-10s %8d %9d %11d %10d %8d %9d %11.2f %11.2f\n",
            configs[c].name, t.racy, t.locksetRefuted, t.toSymbolic,
            t.surviving, t.missed, t.accessesDropped,
            t.escapeMs + t.locksetMs, t.refutationMs);
    }

    const Totals &on = totals[0];
    const Totals &off = totals[1];
    bool preserved = on.missed == 0 && off.missed == 0;
    bool less_work = on.toSymbolic < off.toSymbolic;
    std::printf("\nground truth preserved: %s; fewer pairs reach the "
                "symbolic refuter: %s (%d vs %d; thread-local accesses "
                "dropped: %d)\n",
                preserved ? "yes" : "NO (regression!)",
                less_work ? "yes" : "NO (regression!)", on.toSymbolic,
                off.toSymbolic, on.accessesDropped);

    bench::benchJson(
        "ablation_locks",
        "{\"bench\":\"ablation_locks\",\"corpus\":%d,"
        "\"on\":{\"racy\":%d,\"lockset_refuted\":%d,"
        "\"to_symbolic\":%d,\"surviving\":%d,\"missed\":%d,"
        "\"accesses_dropped\":%d,\"escape_ms\":%.2f,"
        "\"lockset_ms\":%.2f,\"refutation_ms\":%.2f},"
        "\"off\":{\"racy\":%d,\"to_symbolic\":%d,\"surviving\":%d,"
        "\"missed\":%d,\"refutation_ms\":%.2f},"
        "\"preserved\":%s,\"less_work\":%s}",
        20 + corpus::kFdroidAppCount, on.racy, on.locksetRefuted,
        on.toSymbolic, on.surviving, on.missed, on.accessesDropped,
        on.escapeMs, on.locksetMs, on.refutationMs, off.racy,
        off.toSymbolic, off.surviving, off.missed, off.refutationMs,
        preserved ? "true" : "false", less_work ? "true" : "false");
    return preserved && less_work ? 0 : 1;
}
