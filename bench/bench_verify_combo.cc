/**
 * @file
 * The static+dynamic combination the paper proposes in Section 6.4:
 * SIERRA's surviving reports are handed to the dynamic verifier, which
 * hunts for both access orders across randomized schedules. Confirmed
 * reports are certainly real; unobserved ones are where the dynamic
 * side's coverage limits show (the reason EventRacer misses races).
 */

#include <set>

#include "bench_util.hh"
#include "dynamic/race_verifier.hh"

int
main()
{
    using namespace sierra;
    bench::header("Static reports verified dynamically (Section 6.4 "
                  "combination)");
    std::printf("%-18s %8s %10s %10s %12s\n", "App", "reports",
                "confirmed", "observed", "unobserved");

    int total_reports = 0;
    int total_confirmed = 0;
    int total_observed = 0;
    int total_unobserved = 0;
    for (const auto &spec : corpus::namedAppSpecs()) {
        corpus::BuiltApp built = corpus::buildNamedApp(spec);
        SierraDetector detector(*built.app);
        AppReport report = detector.analyze({});
        std::set<std::string> keys;
        for (const auto &race : report.races) {
            if (!race.refuted)
                keys.insert(race.fieldKey);
        }
        dynamic::RaceVerifierOptions options;
        options.numSchedules = 6;
        dynamic::RaceVerificationReport verification =
            verifyRacesDynamically(
                *built.app, {keys.begin(), keys.end()}, options);
        std::printf("%-18s %8zu %10d %10d %12d\n", spec.name.c_str(),
                    keys.size(), verification.confirmed,
                    verification.observed, verification.unobserved);
        total_reports += static_cast<int>(keys.size());
        total_confirmed += verification.confirmed;
        total_observed += verification.observed;
        total_unobserved += verification.unobserved;
    }
    std::printf("%-18s %8d %10d %10d %12d\n", "Total", total_reports,
                total_confirmed, total_observed, total_unobserved);
    std::printf(
        "\nReading: 'confirmed' = both orders actually executed "
        "(certain races);\n'observed'/'unobserved' = schedules did not "
        "exercise both orders -- the same\ncoverage gap that makes "
        "purely dynamic detectors miss races (Table 3).\n");
    return 0;
}
