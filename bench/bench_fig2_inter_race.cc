/**
 * @file
 * Paper Fig. 2: the inter-component Activity-vs-BroadcastReceiver race.
 *
 * The receiver's onReceive (updating the database) is unordered with
 * the activity's onStop (closing it) and onDestroy (nulling the field);
 * the registration itself (onCreate) is ordered before every delivery.
 */

#include "bench_util.hh"
#include "corpus/patterns.hh"

int
main()
{
    using namespace sierra;
    bench::header("Fig. 2: inter-component race (Activity vs Receiver)");

    corpus::AppFactory factory("fig2-receiver");
    auto &act = factory.addActivity("MainActivity");
    corpus::addReceiverDbRace(factory, act);
    corpus::BuiltApp built = factory.finish();

    SierraDetector detector(*built.app);
    HarnessAnalysis ha = detector.analyzeActivity("MainActivity", {});

    int receive = bench::findAction(ha, "onReceive");
    int create = bench::findAction(ha, "onCreate");
    int stop = bench::findAction(ha, "onStop");
    int destroy = bench::findAction(ha, "onDestroy");

    std::printf("HB: onCreate (register) < onReceive: %s\n",
                ha.shbg->reaches(create, receive) ? "yes" : "NO");
    std::printf("HB: onStop vs onReceive unordered: %s\n",
                ha.shbg->unordered(stop, receive) ? "yes" : "NO");
    std::printf("HB: onDestroy vs onReceive unordered: %s\n",
                ha.shbg->unordered(destroy, receive) ? "yes" : "NO");

    std::printf("\nsurviving races:\n");
    for (const auto &p : ha.pairs) {
        if (!p.refuted)
            std::printf("  %s\n",
                        p.toString(*ha.pta, ha.accesses).c_str());
    }

    corpus::Score score =
        corpus::scoreKeys(bench::survivingKeys(ha), built.truth);
    std::printf("\nscore: TP=%d FP=%d missed=%d (expected: conn, "
                "isOpen, mDB all reported)\n",
                score.truePositives, score.falsePositives,
                score.missedTrueKeys);
    return 0;
}
