/**
 * @file
 * Ablation: the UNDEAD-style deadlock stage.
 *
 * Two configurations over the full corpus (20 named apps + the 174
 * F-Droid-analogue apps):
 *   - deadlock on (default): the lock-dependency graph is built from
 *     the lock-set observations and concurrently-runnable cycles are
 *     reported;
 *   - deadlock off: the stage is skipped entirely.
 *
 * The stage must find every seeded cyclic acquisition, report nothing
 * with the stage off, and be purely additive: the race report
 * (surviving pairs, missed true races) is identical in both
 * configurations.
 *
 * Emits one machine-readable `BENCH {...}` JSON line.
 */

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Ablation: deadlock cycle detection");

    struct Totals {
        int seededCycles{0};
        int foundCycles{0};
        int appsWithFindings{0};
        int surviving{0};
        int missedRaces{0};
        double deadlockMs{0};
    };
    Totals totals[2]; // [0] = on, [1] = off

    std::printf("%-14s %8s %8s %10s %10s %8s %12s\n", "config",
                "seeded", "found", "with-find", "surviving", "missed",
                "stage ms");
    for (int c = 0; c < 2; ++c) {
        const bool enabled = c == 0;
        Totals &t = totals[c];
        auto run = [&](corpus::BuiltApp built) {
            SierraDetector detector(*built.app);
            SierraOptions opts;
            opts.deadlock = enabled;
            AppReport report = detector.analyze(opts);
            t.seededCycles += built.truth.seededDeadlocks;
            t.foundCycles += static_cast<int>(report.deadlocks.size());
            if (!report.deadlocks.empty())
                ++t.appsWithFindings;
            t.surviving += report.afterRefutation;
            t.missedRaces +=
                corpus::scoreReport(report, built.truth).missedTrueKeys;
            t.deadlockMs += report.times.deadlock * 1e3;
        };
        for (const auto &spec : corpus::namedAppSpecs())
            run(corpus::buildNamedApp(spec));
        for (int i = 0; i < corpus::kFdroidAppCount; ++i)
            run(corpus::buildFdroidApp(i));
        std::printf("%-14s %8d %8d %10d %10d %8d %12.2f\n",
                    enabled ? "deadlock on" : "deadlock off",
                    t.seededCycles, t.foundCycles, t.appsWithFindings,
                    t.surviving, t.missedRaces, t.deadlockMs);
    }

    const Totals &on = totals[0];
    const Totals &off = totals[1];
    bool cycles_found =
        on.seededCycles > 0 && on.foundCycles >= on.seededCycles;
    bool off_silent = off.foundCycles == 0;
    bool additive = on.surviving == off.surviving &&
                    on.missedRaces == 0 && off.missedRaces == 0;
    std::printf("\nseeded cycles found: %s; off-config silent: %s; "
                "race report unchanged: %s\n",
                cycles_found ? "yes" : "NO (regression!)",
                off_silent ? "yes" : "NO (regression!)",
                additive ? "yes" : "NO (regression!)");

    bench::benchJson(
        "ablation_deadlock",
        "{\"bench\":\"ablation_deadlock\",\"corpus\":%d,"
        "\"on\":{\"seeded_cycles\":%d,\"found_cycles\":%d,"
        "\"apps_with_findings\":%d,\"surviving\":%d,\"missed\":%d,"
        "\"deadlock_ms\":%.2f},"
        "\"off\":{\"found_cycles\":%d,\"surviving\":%d,\"missed\":%d},"
        "\"cycles_found\":%s,\"off_silent\":%s,\"additive\":%s}",
        20 + corpus::kFdroidAppCount, on.seededCycles, on.foundCycles,
        on.appsWithFindings, on.surviving, on.missedRaces,
        on.deadlockMs, off.foundCycles, off.surviving, off.missedRaces,
        cycles_found ? "true" : "false", off_silent ? "true" : "false",
        additive ? "true" : "false");
    return cycles_found && off_silent && additive ? 0 : 1;
}
