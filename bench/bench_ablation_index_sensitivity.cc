/**
 * @file
 * Ablation: index-insensitive vs. index-sensitive array analysis
 * (paper Section 6.5 names index-insensitivity as an FP source and
 * cites Dillig et al. as the fix; this bench measures the fix).
 */

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Ablation: array index sensitivity (20-app corpus)");
    std::printf("%-20s %10s %8s %8s %10s\n", "mode", "racyPairs",
                "FPs", "missed", "time ms");

    for (bool sensitive : {false, true}) {
        int racy = 0;
        int fp = 0;
        int missed = 0;
        double ms = 0;
        for (const auto &spec : corpus::namedAppSpecs()) {
            corpus::BuiltApp built = corpus::buildNamedApp(spec);
            SierraDetector detector(*built.app);
            SierraOptions options;
            options.pta.indexSensitiveArrays = sensitive;
            AppReport report = detector.analyze(options);
            corpus::Score score =
                corpus::scoreReport(report, built.truth);
            racy += report.racyPairs;
            fp += score.falsePositives;
            missed += score.missedTrueKeys;
            ms += report.times.total * 1e3;
        }
        std::printf("%-20s %10d %8d %8d %10.2f\n",
                    sensitive ? "index-sensitive"
                              : "index-insensitive",
                    racy, fp, missed, ms);
    }
    std::printf("\nExpected: index sensitivity removes the arrayIndexTrap"
                " false positives\n(every app that carries the pattern) "
                "at no cost in missed races.\n");
    return 0;
}
