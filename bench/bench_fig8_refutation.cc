/**
 * @file
 * Paper Fig. 8 / Section 5: symbolic-execution refutation of the
 * OpenSudoku timer false positive.
 *
 * The mAccumTime accesses in run() and stop() are both guarded by
 * mIsRunning; backward symbolic execution finds the "stop before run"
 * ordering infeasible (the strong update mIsRunning=false contradicts
 * the collected path constraint), so the candidate is refuted. The
 * race on the guard variable itself survives, as in the paper.
 */

#include "bench_util.hh"
#include "corpus/patterns.hh"
#include "symbolic/executor.hh"

int
main()
{
    using namespace sierra;
    bench::header("Fig. 8: symbolic refutation (guarded timer)");

    corpus::AppFactory factory("fig8-sudoku");
    auto &act = factory.addActivity("SudokuPlayActivity");
    corpus::addGuardedTimer(factory, act);
    corpus::BuiltApp built = factory.finish();

    SierraDetector detector(*built.app);
    SierraOptions no_refute;
    no_refute.runRefutation = false;
    HarnessAnalysis ha =
        detector.analyzeActivity("SudokuPlayActivity", no_refute);

    std::printf("candidate racy pairs (before refutation): %zu\n\n",
                ha.pairs.size());

    symbolic::BackwardExecutor exec(*ha.pta, {});
    for (const auto &p : ha.pairs) {
        std::printf("%s\n", p.toString(*ha.pta, ha.accesses).c_str());
        const auto &e = p.actionPairs.front();
        auto d1 = exec.orderFeasible(ha.accesses[e.access1], e.action1,
                                     e.action2);
        auto d2 = exec.orderFeasible(ha.accesses[e.access2], e.action2,
                                     e.action1);
        std::printf("    order A-after-B: %-10s order B-after-A: %-10s"
                    " => %s\n",
                    symbolic::queryVerdictName(d1),
                    symbolic::queryVerdictName(d2),
                    (d1 == symbolic::QueryVerdict::Infeasible ||
                     d2 == symbolic::QueryVerdict::Infeasible)
                        ? "REFUTED"
                        : "race");
    }

    const auto &stats = exec.stats();
    std::printf("\nexecutor: %lld queries, %lld states, %lld memo "
                "hits, %lld budget exhaustions\n",
                static_cast<long long>(stats.queries),
                static_cast<long long>(stats.statesExpanded),
                static_cast<long long>(stats.cacheHits),
                static_cast<long long>(stats.budgetExhausted));

    // Now the full pipeline with refutation.
    HarnessAnalysis full =
        detector.analyzeActivity("SudokuPlayActivity", {});
    std::printf("\nafter refutation: %d of %d candidates survive\n",
                full.survivingRaceCount(), full.racyPairCount());
    for (const auto &p : full.pairs) {
        std::printf("  %-8s %s\n", p.refuted ? "refuted" : "RACE",
                    p.toString(*full.pta, full.accesses).c_str());
    }
    std::printf("\nexpected: every mAccumTime pair refuted; the "
                "mIsRunning guard race survives.\n");
    return 0;
}
