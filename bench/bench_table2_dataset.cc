/**
 * @file
 * Paper Table 2: the 20-app dataset -- install brackets and app size.
 *
 * The "Bytecode size" column of the paper reports .dex bytes of the
 * real apps; our substitute corpus reports the serialized AIR bytes of
 * the model apps (whose scale tracks the real sizes by construction).
 */

#include <cinttypes>

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Table 2: app popularity and size (20-app dataset)");
    std::printf("%-18s %-28s %12s %14s\n", "App", "Installs",
                "Real dex KB", "Model AIR B");
    for (const auto &spec : corpus::namedAppSpecs()) {
        corpus::BuiltApp built = corpus::buildNamedApp(spec);
        std::printf("%-18s %-28s %12d %14zu\n", spec.name.c_str(),
                    spec.installs.c_str(), spec.bytecodeKb,
                    built.app->codeSize());
    }
    std::printf(
        "\nNote: the model size column is the serialized size of the "
        "synthetic AIR\nmodule standing in for the real APK "
        "(DESIGN.md, substitution table).\n");
    return 0;
}
