/**
 * @file
 * Ablation: callback-enablement refutation.
 *
 * Two configurations over the full corpus (20 named apps + the
 * F-Droid-analogue apps):
 *   - enablement on (default): the registration-typestate stage
 *     exonerates pairs whose enabling callback is must-disabled at
 *     every unordered point before the partner action runs;
 *   - enablement off: those pairs survive to the symbolic refuter and
 *     the report.
 *
 * The stage must be report-preserving on ground truth (zero missed
 * true races in either configuration) while strictly more pairs are
 * refuted with it on.
 *
 * Emits one machine-readable `BENCH {...}` JSON line.
 */

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Ablation: callback-enablement refutation");

    struct Config {
        const char *name;
        bool enablement;
    };
    const Config configs[] = {
        {"enable on", true},
        {"enable off", false},
    };

    struct Totals {
        int racy{0};
        int enablementRefuted{0};
        int surviving{0};
        int missed{0};
        int64_t queries{0};
        double enablementMs{0};
        double refutationMs{0};
    };
    Totals totals[2];

    std::printf("%-10s %8s %11s %10s %8s %9s %11s %11s\n", "config",
                "racy", "enablement", "surviving", "missed", "queries",
                "stage ms", "refute ms");
    for (int c = 0; c < 2; ++c) {
        Totals &t = totals[c];
        auto run = [&](corpus::BuiltApp built) {
            SierraDetector detector(*built.app);
            SierraOptions opts;
            opts.enablement = configs[c].enablement;
            AppReport report = detector.analyze(opts);
            t.racy += report.racyPairs;
            t.enablementRefuted += report.enablementRefuted;
            t.surviving += report.afterRefutation;
            t.missed +=
                corpus::scoreReport(report, built.truth).missedTrueKeys;
            for (const auto &ha : report.perHarness)
                t.queries += ha.enablementStats.queries;
            t.enablementMs += report.times.enablement * 1e3;
            t.refutationMs += report.times.refutation * 1e3;
        };
        for (const auto &spec : corpus::namedAppSpecs())
            run(corpus::buildNamedApp(spec));
        for (int i = 0; i < corpus::kFdroidAppCount; ++i)
            run(corpus::buildFdroidApp(i));
        std::printf(
            "%-10s %8d %11d %10d %8d %9lld %11.2f %11.2f\n",
            configs[c].name, t.racy, t.enablementRefuted, t.surviving,
            t.missed, static_cast<long long>(t.queries),
            t.enablementMs, t.refutationMs);
    }

    const Totals &on = totals[0];
    const Totals &off = totals[1];
    bool preserved = on.missed == 0 && off.missed == 0;
    bool more_refuted = on.enablementRefuted > off.enablementRefuted;
    std::printf("\nground truth preserved: %s; strictly more pairs "
                "refuted with the stage on: %s (%d vs %d)\n",
                preserved ? "yes" : "NO (regression!)",
                more_refuted ? "yes" : "NO (regression!)",
                on.enablementRefuted, off.enablementRefuted);

    bench::benchJson(
        "ablation_enablement",
        "{\"bench\":\"ablation_enablement\",\"corpus\":%d,"
        "\"on\":{\"racy\":%d,\"enablement_refuted\":%d,"
        "\"surviving\":%d,\"missed\":%d,\"queries\":%lld,"
        "\"enablement_ms\":%.2f,\"refutation_ms\":%.2f},"
        "\"off\":{\"racy\":%d,\"surviving\":%d,\"missed\":%d,"
        "\"refutation_ms\":%.2f},"
        "\"preserved\":%s,\"more_refuted\":%s}",
        20 + corpus::kFdroidAppCount, on.racy, on.enablementRefuted,
        on.surviving, on.missed, static_cast<long long>(on.queries),
        on.enablementMs, on.refutationMs, off.racy, off.surviving,
        off.missed, off.refutationMs, preserved ? "true" : "false",
        more_refuted ? "true" : "false");
    return preserved && more_refuted ? 0 : 1;
}
