/** @file Shared helpers for the table/figure reproduction benches. */

#ifndef SIERRA_BENCH_BENCH_UTIL_HH
#define SIERRA_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "corpus/generator.hh"
#include "corpus/named_apps.hh"
#include "dynamic/event_racer.hh"
#include "sierra/detector.hh"
#include "util/trace.hh"

namespace sierra::bench {

/**
 * Every bench honors `SIERRA_TRACE=<file>`: when set, the whole bench
 * run is traced and the Chrome trace-event JSON is written at process
 * exit (see docs/OBSERVABILITY.md). Implemented as an inline-variable
 * RAII guard so each bench binary gets the hook by including this
 * header — no per-bench code.
 */
struct TraceEnvHook {
    std::string path;
    TraceEnvHook()
    {
        const char *p = std::getenv("SIERRA_TRACE");
        if (p && *p) {
            path = p;
            util::trace::start();
        }
    }
    ~TraceEnvHook()
    {
        if (!path.empty()) {
            if (util::trace::writeJson(path))
                std::fprintf(stderr, "trace written to %s\n",
                             path.c_str());
            else
                std::fprintf(stderr,
                             "error: cannot write trace '%s'\n",
                             path.c_str());
        }
    }
};
inline TraceEnvHook g_traceEnvHook;

/** Everything one app contributes to the evaluation tables. */
struct AppStats {
    std::string name;
    size_t codeSize{0};
    int harnesses{0};
    int actions{0};
    int64_t hbEdges{0};
    double orderedPct{0};
    int racyNoAs{-1}; //!< racy pairs without action-sensitivity
    int racyAs{0};    //!< racy pairs with action-sensitivity
    int afterRefutation{0};
    int truePositives{0};
    int falsePositives{0};
    int missed{0};
    int eventRacerRaces{-1};
    StageTimes times;
};

/** Options for the shared per-app evaluation driver. */
struct EvalOptions {
    bool ablateContext{false}; //!< also run the Hybrid (no-AS) policy
    bool runEventRacer{false};
    int eventRacerSchedules{3};
};

/** Run the full evaluation for one built app. */
inline AppStats
evaluateApp(const std::string &name, corpus::BuiltApp built,
            const EvalOptions &eval = {})
{
    AppStats stats;
    stats.name = name;
    stats.codeSize = built.app->codeSize();

    SierraDetector detector(*built.app);
    AppReport report = detector.analyze({});
    stats.harnesses = report.harnesses;
    stats.actions = report.actions;
    stats.hbEdges = report.hbEdges;
    stats.orderedPct = report.orderedPct;
    stats.racyAs = report.racyPairs;
    stats.afterRefutation = report.afterRefutation;
    stats.times = report.times;

    corpus::Score score = corpus::scoreReport(report, built.truth);
    stats.truePositives = score.truePositives;
    stats.falsePositives = score.falsePositives;
    stats.missed = score.missedTrueKeys;

    if (eval.ablateContext) {
        SierraOptions hybrid;
        hybrid.pta.ctx.policy = analysis::ContextPolicy::Hybrid;
        hybrid.runRefutation = false;
        stats.racyNoAs = detector.analyze(hybrid).racyPairs;
    }
    if (eval.runEventRacer) {
        dynamic::EventRacerOptions er;
        er.numSchedules = eval.eventRacerSchedules;
        stats.eventRacerRaces = static_cast<int>(
            runEventRacer(*built.app, er).raceKeys().size());
    }
    return stats;
}

/** Find an action by label substring within a harness analysis. */
inline int
findAction(const HarnessAnalysis &ha, const std::string &needle)
{
    for (const auto &a : ha.pta->actions.all()) {
        if (a.label.find(needle) != std::string::npos)
            return a.id;
    }
    return -1;
}

/** Keys of surviving races of one harness analysis. */
inline std::vector<std::string>
survivingKeys(const HarnessAnalysis &ha)
{
    std::vector<std::string> keys;
    for (const auto &p : ha.pairs) {
        if (!p.refuted)
            keys.push_back(p.loc.key.str());
    }
    return keys;
}

/** Median of a (copied) numeric vector; 0 when empty. */
template <typename T>
double
median(std::vector<T> values)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return static_cast<double>(values[mid]);
    return (static_cast<double>(values[mid - 1]) +
            static_cast<double>(values[mid])) /
           2.0;
}

/**
 * Emit one machine-readable benchmark record: prints the historical
 * `BENCH {...}` stdout line and mirrors the same JSON object to
 * `BENCH_<name>.json` so runs leave a diffable artifact (the committed
 * snapshots under bench/trajectory/ form the in-repo perf trajectory).
 * Files go to the current directory unless SIERRA_BENCH_DIR is set.
 */
inline void
benchJson(const char *name, const char *fmt, ...)
{
    char buf[8192];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    std::printf("\nBENCH %s\n", buf);

    const char *dir = std::getenv("SIERRA_BENCH_DIR");
    std::string path = std::string(dir && *dir ? dir : ".") +
                       "/BENCH_" + name + ".json";
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "%s\n", buf);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
    }
}

/** printf-style row helper with a fixed-width first column. */
inline void
row(const std::string &first, const char *fmt, ...)
{
    std::printf("%-18s", first.c_str());
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
    std::printf("\n");
}

inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace sierra::bench

#endif // SIERRA_BENCH_BENCH_UTIL_HH
