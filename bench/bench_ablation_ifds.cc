/**
 * @file
 * Ablation: the interprocedural IFDS stage.
 *
 * Two configurations over the 20-app corpus:
 *   - ifds on (default): the refuter gets InterConstants summaries
 *     (setter parameters, callee returns, must-write-constant call
 *     effects) and the use-after-destroy client runs;
 *   - ifds off: the PR-3 pipeline (intraprocedural facts only; calls
 *     beyond the descend limit are havocked).
 *
 * The stage must be report-preserving on ground truth (zero missed
 * true races in BOTH configurations) while refuting strictly more
 * pairs: the interprocedural facts only ever add refutation power.
 * Per-pair, every pair refuted without the stage stays refuted with
 * it.
 *
 * Emits one machine-readable `BENCH {...}` JSON line.
 */

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Ablation: interprocedural IFDS summaries");

    struct Config {
        const char *name;
        bool ifds;
    };
    const Config configs[] = {
        {"ifds on", true},
        {"ifds off", false},
    };

    struct Totals {
        int racy{0};
        int refuted{0};
        int surviving{0};
        int missed{0};
        int useAfterDestroy{0};
        int64_t interPruned{0};
        int64_t interApplied{0};
        double ifdsMs{0};
        double refutationMs{0};
    };
    Totals totals[2];

    std::printf("%-10s %8s %8s %10s %8s %6s %10s %10s %10s\n",
                "config", "racy", "refuted", "surviving", "missed",
                "uad", "applied", "ifds ms", "refute ms");
    bool per_pair_monotone = true;
    for (int c = 0; c < 2; ++c) {
        Totals &t = totals[c];
        for (const auto &spec : corpus::namedAppSpecs()) {
            corpus::BuiltApp built = corpus::buildNamedApp(spec);
            SierraDetector detector(*built.app);
            SierraOptions opts;
            opts.ifds = configs[c].ifds;
            AppReport report = detector.analyze(opts);
            t.racy += report.racyPairs;
            t.refuted += report.racyPairs - report.afterRefutation;
            t.surviving += report.afterRefutation;
            t.missed +=
                corpus::scoreReport(report, built.truth).missedTrueKeys;
            t.useAfterDestroy +=
                static_cast<int>(report.useAfterDestroy.size());
            for (const auto &ha : report.perHarness) {
                t.interPruned += ha.refutation.exec.interPruned;
                t.interApplied += ha.refutation.exec.interApplied;
            }
            t.ifdsMs += report.times.ifds * 1e3;
            t.refutationMs += report.times.refutation * 1e3;

            // Per-pair monotonicity: every race refuted without the
            // summaries must still be refuted with them (the facts
            // only prune orderings, never add feasible ones).
            if (!configs[c].ifds) {
                SierraOptions on_opts;
                AppReport with = detector.analyze(on_opts);
                for (const auto &race : report.races) {
                    if (!race.refuted)
                        continue;
                    for (const auto &r2 : with.races) {
                        if (r2.description == race.description &&
                            !r2.refuted)
                            per_pair_monotone = false;
                    }
                }
            }
        }
        std::printf("%-10s %8d %8d %10d %8d %6d %10lld %10.2f %10.2f\n",
                    configs[c].name, t.racy, t.refuted, t.surviving,
                    t.missed, t.useAfterDestroy,
                    static_cast<long long>(t.interApplied), t.ifdsMs,
                    t.refutationMs);
    }

    const Totals &on = totals[0];
    const Totals &off = totals[1];
    bool preserved = on.missed == 0 && off.missed == 0;
    bool more_refuted = on.refuted > off.refuted;
    std::printf("\nzero missed true races (both configs): %s; "
                "strictly more refuted with summaries: %s; "
                "per-pair monotone: %s "
                "(inter facts applied: %lld, edges pruned: %lld)\n",
                preserved ? "yes" : "NO (regression!)",
                more_refuted ? "yes" : "NO (regression!)",
                per_pair_monotone ? "yes" : "NO (regression!)",
                static_cast<long long>(on.interApplied),
                static_cast<long long>(on.interPruned));

    bench::benchJson(
        "ablation_ifds",
        "{\"bench\":\"ablation_ifds\",\"corpus\":20,"
        "\"on\":{\"racy\":%d,\"refuted\":%d,\"surviving\":%d,"
        "\"missed\":%d,\"use_after_destroy\":%d,"
        "\"inter_applied\":%lld,\"inter_pruned\":%lld,"
        "\"ifds_ms\":%.2f,\"refutation_ms\":%.2f},"
        "\"off\":{\"racy\":%d,\"refuted\":%d,\"surviving\":%d,"
        "\"missed\":%d,\"refutation_ms\":%.2f},"
        "\"preserved\":%s,\"more_refuted\":%s,"
        "\"per_pair_monotone\":%s}",
        on.racy, on.refuted, on.surviving, on.missed,
        on.useAfterDestroy, static_cast<long long>(on.interApplied),
        static_cast<long long>(on.interPruned), on.ifdsMs,
        on.refutationMs, off.racy, off.refuted, off.surviving,
        off.missed, off.refutationMs, preserved ? "true" : "false",
        more_refuted ? "true" : "false",
        per_pair_monotone ? "true" : "false");
    return preserved && more_refuted && per_pair_monotone ? 0 : 1;
}
