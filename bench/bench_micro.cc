/**
 * @file
 * Google-benchmark microbenchmarks for the core pipeline stages:
 * corpus construction, parser round-trip, pointer analysis, SHBG
 * construction, racy-pair detection, symbolic refutation, and the
 * dynamic detector.
 */

#include <benchmark/benchmark.h>

#include "air/parser.hh"
#include "air/printer.hh"
#include "bench_util.hh"
#include "hb/rules.hh"

namespace {

using namespace sierra;

corpus::BuiltApp
appFor(int size_class)
{
    switch (size_class) {
      case 0: return corpus::buildNamedApp("VuDroid");     // tiny
      case 1: return corpus::buildNamedApp("OpenSudoku");  // small
      case 2: return corpus::buildNamedApp("Beem");        // medium
      default: return corpus::buildNamedApp("Astrid");     // large
    }
}

void
BM_BuildCorpusApp(benchmark::State &state)
{
    for (auto _ : state) {
        corpus::BuiltApp built = appFor(state.range(0));
        benchmark::DoNotOptimize(built.app->codeSize());
    }
}
BENCHMARK(BM_BuildCorpusApp)->DenseRange(0, 3);

void
BM_ParserRoundTrip(benchmark::State &state)
{
    corpus::BuiltApp built = appFor(state.range(0));
    std::string text = air::printModule(built.app->module());
    for (auto _ : state) {
        air::ParseResult r = air::parseModule(text);
        benchmark::DoNotOptimize(r.module->numClasses());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * text.size());
}
BENCHMARK(BM_ParserRoundTrip)->DenseRange(0, 3);

void
BM_PointsToAnalysis(benchmark::State &state)
{
    corpus::BuiltApp built = appFor(state.range(0));
    SierraDetector detector(*built.app);
    const auto &plan = detector.plans()[0];
    for (auto _ : state) {
        analysis::PointsToAnalysis pta(*built.app, plan, {});
        auto result = pta.run();
        benchmark::DoNotOptimize(result->cg.numNodes());
    }
}
BENCHMARK(BM_PointsToAnalysis)->DenseRange(0, 3);

void
BM_ShbgConstruction(benchmark::State &state)
{
    corpus::BuiltApp built = appFor(state.range(0));
    SierraDetector detector(*built.app);
    const auto &plan = detector.plans()[0];
    analysis::PointsToAnalysis pta(*built.app, plan, {});
    auto result = pta.run();
    for (auto _ : state) {
        hb::HbBuilder builder(*result, plan, *built.app, {});
        auto shbg = builder.build();
        benchmark::DoNotOptimize(shbg->numClosurePairs());
    }
}
BENCHMARK(BM_ShbgConstruction)->DenseRange(0, 3);

void
BM_FullPipeline(benchmark::State &state)
{
    corpus::BuiltApp built = appFor(state.range(0));
    SierraDetector detector(*built.app);
    for (auto _ : state) {
        AppReport report = detector.analyze({});
        benchmark::DoNotOptimize(report.afterRefutation);
    }
}
BENCHMARK(BM_FullPipeline)->DenseRange(0, 3);

void
BM_Refutation(benchmark::State &state)
{
    corpus::BuiltApp built = appFor(state.range(0));
    SierraDetector detector(*built.app);
    SierraOptions no_refute;
    no_refute.runRefutation = false;
    const std::string activity =
        built.app->manifest().activities[0];
    HarnessAnalysis ha = detector.analyzeActivity(activity, no_refute);
    for (auto _ : state) {
        auto pairs = ha.pairs; // fresh flags each iteration
        symbolic::RefutationStats stats = symbolic::refuteRaces(
            *ha.pta, ha.accesses, pairs, {});
        benchmark::DoNotOptimize(stats.refuted);
    }
}
BENCHMARK(BM_Refutation)->DenseRange(0, 3);

void
BM_EventRacerSchedule(benchmark::State &state)
{
    corpus::BuiltApp built = appFor(state.range(0));
    // Install the framework model / Nondet like the detector would.
    harness::HarnessGenerator gen(*built.app);
    uint32_t seed = 1;
    for (auto _ : state) {
        dynamic::RunOptions run;
        run.seed = seed++;
        dynamic::Interpreter interp(*built.app, run);
        dynamic::Trace trace = interp.run();
        benchmark::DoNotOptimize(trace.accesses.size());
    }
}
BENCHMARK(BM_EventRacerSchedule)->DenseRange(0, 3);

void
BM_ShbgClosureScaling(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        hb::Shbg g(n);
        for (int i = 0; i + 1 < n; ++i)
            g.addEdge(i, i + 1, hb::HbRule::Invocation);
        benchmark::DoNotOptimize(g.numClosurePairs());
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_ShbgClosureScaling)->RangeMultiplier(2)->Range(32, 512);

} // namespace

BENCHMARK_MAIN();
