/**
 * @file
 * Google-benchmark microbenchmarks for the core pipeline stages:
 * corpus construction, parser round-trip, pointer analysis, SHBG
 * construction, racy-pair detection, symbolic refutation, and the
 * dynamic detector.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <set>

#include "air/parser.hh"
#include "air/printer.hh"
#include "bench_util.hh"
#include "hb/rules.hh"
#include "util/bitset.hh"

namespace {

using namespace sierra;

/** Deterministic id stream (LCG) so both containers see identical
 *  insertion orders — no std::random, no run-to-run drift. */
struct IdStream {
    uint32_t x{12345};
    int
    next(int universe)
    {
        x = x * 1664525u + 1013904223u;
        return static_cast<int>((x >> 8) % universe);
    }
};

corpus::BuiltApp
appFor(int size_class)
{
    switch (size_class) {
      case 0: return corpus::buildNamedApp("VuDroid");     // tiny
      case 1: return corpus::buildNamedApp("OpenSudoku");  // small
      case 2: return corpus::buildNamedApp("Beem");        // medium
      default: return corpus::buildNamedApp("Astrid");     // large
    }
}

void
BM_BuildCorpusApp(benchmark::State &state)
{
    for (auto _ : state) {
        corpus::BuiltApp built = appFor(state.range(0));
        benchmark::DoNotOptimize(built.app->codeSize());
    }
}
BENCHMARK(BM_BuildCorpusApp)->DenseRange(0, 3);

void
BM_ParserRoundTrip(benchmark::State &state)
{
    corpus::BuiltApp built = appFor(state.range(0));
    std::string text = air::printModule(built.app->module());
    for (auto _ : state) {
        air::ParseResult r = air::parseModule(text);
        benchmark::DoNotOptimize(r.module->numClasses());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * text.size());
}
BENCHMARK(BM_ParserRoundTrip)->DenseRange(0, 3);

void
BM_PointsToAnalysis(benchmark::State &state)
{
    corpus::BuiltApp built = appFor(state.range(0));
    SierraDetector detector(*built.app);
    const auto &plan = detector.plans()[0];
    for (auto _ : state) {
        analysis::PointsToAnalysis pta(*built.app, plan, {});
        auto result = pta.run();
        benchmark::DoNotOptimize(result->cg.numNodes());
    }
}
BENCHMARK(BM_PointsToAnalysis)->DenseRange(0, 3);

void
BM_ShbgConstruction(benchmark::State &state)
{
    corpus::BuiltApp built = appFor(state.range(0));
    SierraDetector detector(*built.app);
    const auto &plan = detector.plans()[0];
    analysis::PointsToAnalysis pta(*built.app, plan, {});
    auto result = pta.run();
    for (auto _ : state) {
        hb::HbBuilder builder(*result, plan, *built.app, {});
        auto shbg = builder.build();
        benchmark::DoNotOptimize(shbg->numClosurePairs());
    }
}
BENCHMARK(BM_ShbgConstruction)->DenseRange(0, 3);

void
BM_FullPipeline(benchmark::State &state)
{
    corpus::BuiltApp built = appFor(state.range(0));
    SierraDetector detector(*built.app);
    for (auto _ : state) {
        AppReport report = detector.analyze({});
        benchmark::DoNotOptimize(report.afterRefutation);
    }
}
BENCHMARK(BM_FullPipeline)->DenseRange(0, 3);

void
BM_Refutation(benchmark::State &state)
{
    corpus::BuiltApp built = appFor(state.range(0));
    SierraDetector detector(*built.app);
    SierraOptions no_refute;
    no_refute.runRefutation = false;
    const std::string activity =
        built.app->manifest().activities[0];
    HarnessAnalysis ha = detector.analyzeActivity(activity, no_refute);
    for (auto _ : state) {
        auto pairs = ha.pairs; // fresh flags each iteration
        symbolic::RefutationStats stats = symbolic::refuteRaces(
            *ha.pta, ha.accesses, pairs, {});
        benchmark::DoNotOptimize(stats.refuted);
    }
}
BENCHMARK(BM_Refutation)->DenseRange(0, 3);

void
BM_EventRacerSchedule(benchmark::State &state)
{
    corpus::BuiltApp built = appFor(state.range(0));
    // Install the framework model / Nondet like the detector would.
    harness::HarnessGenerator gen(*built.app);
    uint32_t seed = 1;
    for (auto _ : state) {
        dynamic::RunOptions run;
        run.seed = seed++;
        dynamic::Interpreter interp(*built.app, run);
        dynamic::Trace trace = interp.run();
        benchmark::DoNotOptimize(trace.accesses.size());
    }
}
BENCHMARK(BM_EventRacerSchedule)->DenseRange(0, 3);

void
BM_ShbgClosureScaling(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        hb::Shbg g(n);
        for (int i = 0; i + 1 < n; ++i)
            g.addEdge(i, i + 1, hb::HbRule::Invocation);
        benchmark::DoNotOptimize(g.numClosurePairs());
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_ShbgClosureScaling)->RangeMultiplier(2)->Range(32, 512);

// --- ObjBitset vs std::set<ObjId>: the representation swap behind ---
// --- the points-to/escape/effects overhaul, measured head-to-head ---

void
BM_PtsInsert_StdSet(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        std::set<int> s;
        IdStream ids;
        for (int i = 0; i < n; ++i)
            s.insert(ids.next(n * 4));
        benchmark::DoNotOptimize(s.size());
    }
}
BENCHMARK(BM_PtsInsert_StdSet)->RangeMultiplier(8)->Range(16, 1024);

void
BM_PtsInsert_ObjBitset(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        util::ObjBitset s;
        IdStream ids;
        for (int i = 0; i < n; ++i)
            s.insert(ids.next(n * 4));
        benchmark::DoNotOptimize(s.size());
    }
}
BENCHMARK(BM_PtsInsert_ObjBitset)->RangeMultiplier(8)->Range(16, 1024);

void
BM_PtsUnion_StdSet(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    std::set<int> a, b;
    IdStream ids;
    for (int i = 0; i < n; ++i) {
        a.insert(ids.next(n * 4));
        b.insert(ids.next(n * 4));
    }
    for (auto _ : state) {
        std::set<int> dst = a;
        dst.insert(b.begin(), b.end());
        benchmark::DoNotOptimize(dst.size());
    }
}
BENCHMARK(BM_PtsUnion_StdSet)->RangeMultiplier(8)->Range(16, 1024);

void
BM_PtsUnion_ObjBitset(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    util::ObjBitset a, b;
    IdStream ids;
    for (int i = 0; i < n; ++i) {
        a.insert(ids.next(n * 4));
        b.insert(ids.next(n * 4));
    }
    for (auto _ : state) {
        util::ObjBitset dst = a;
        dst.unionWith(b);
        benchmark::DoNotOptimize(dst.size());
    }
}
BENCHMARK(BM_PtsUnion_ObjBitset)->RangeMultiplier(8)->Range(16, 1024);

void
BM_PtsIterate_StdSet(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    std::set<int> s;
    IdStream ids;
    for (int i = 0; i < n; ++i)
        s.insert(ids.next(n * 4));
    for (auto _ : state) {
        int64_t sum = 0;
        for (int v : s)
            sum += v;
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_PtsIterate_StdSet)->RangeMultiplier(8)->Range(16, 1024);

void
BM_PtsIterate_ObjBitset(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    util::ObjBitset s;
    IdStream ids;
    for (int i = 0; i < n; ++i)
        s.insert(ids.next(n * 4));
    for (auto _ : state) {
        int64_t sum = 0;
        for (int v : s)
            sum += v;
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_PtsIterate_ObjBitset)->RangeMultiplier(8)->Range(16, 1024);

/** Best-of-5 ns/op for `fn` run `iters` times (for the BENCH JSON
 *  rows; the google-benchmark output above stays the primary view). */
template <typename Fn>
double
nsPerOp(int iters, Fn fn)
{
    double best = 1e18;
    for (int rep = 0; rep < 5; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            fn();
        double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count() /
                    iters;
        if (ns < best)
            best = ns;
    }
    return best;
}

void
emitMicroBenchJson()
{
    const int n = 256, universe = 1024, iters = 2000;
    std::set<int> sa, sb;
    util::ObjBitset ba, bb;
    IdStream ids;
    for (int i = 0; i < n; ++i) {
        int v1 = ids.next(universe), v2 = ids.next(universe);
        sa.insert(v1);
        sb.insert(v2);
        ba.insert(v1);
        bb.insert(v2);
    }

    double set_insert = nsPerOp(iters, [&] {
        std::set<int> s;
        IdStream is;
        for (int i = 0; i < n; ++i)
            s.insert(is.next(universe));
        benchmark::DoNotOptimize(s.size());
    });
    double bits_insert = nsPerOp(iters, [&] {
        util::ObjBitset s;
        IdStream is;
        for (int i = 0; i < n; ++i)
            s.insert(is.next(universe));
        benchmark::DoNotOptimize(s.size());
    });
    double set_union = nsPerOp(iters, [&] {
        std::set<int> dst = sa;
        dst.insert(sb.begin(), sb.end());
        benchmark::DoNotOptimize(dst.size());
    });
    double bits_union = nsPerOp(iters, [&] {
        util::ObjBitset dst = ba;
        dst.unionWith(bb);
        benchmark::DoNotOptimize(dst.size());
    });
    double set_iter = nsPerOp(iters, [&] {
        int64_t sum = 0;
        for (int v : sa)
            sum += v;
        benchmark::DoNotOptimize(sum);
    });
    double bits_iter = nsPerOp(iters, [&] {
        int64_t sum = 0;
        for (int v : ba)
            sum += v;
        benchmark::DoNotOptimize(sum);
    });

    bench::benchJson(
        "micro",
        "{\"bench\":\"micro\",\"n\":%d,\"universe\":%d,\"rows\":["
        "{\"op\":\"insert\",\"std_set_ns\":%.1f,\"objbitset_ns\":%.1f},"
        "{\"op\":\"union\",\"std_set_ns\":%.1f,\"objbitset_ns\":%.1f},"
        "{\"op\":\"iterate\",\"std_set_ns\":%.1f,\"objbitset_ns\":%.1f}"
        "]}",
        n, universe, set_insert, bits_insert, set_union, bits_union,
        set_iter, bits_iter);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    emitMicroBenchJson();
    return 0;
}
