/**
 * @file
 * Ablation: the intraprocedural dataflow stage.
 *
 * Two configurations over the 20-app corpus:
 *   - dataflow on (default): the purity/field-effect prefilter drops
 *     access pairs whose methods cannot conflict, and the refuter's
 *     backward execution concretizes registers and prunes infeasible
 *     branches with per-method constant facts;
 *   - dataflow off: the PR-1 pipeline (no prefilter, opaque
 *     arithmetic).
 *
 * The interprocedural IFDS stage is disabled in BOTH configurations:
 * its summaries subsume the intraprocedural constant facts, so
 * leaving it on would mask the stage under ablation (see
 * bench_ablation_ifds for that stage's own on/off comparison).
 *
 * The stage must be report-preserving on ground truth (identical
 * misses) while doing strictly less refutation work: fewer surviving
 * reports or fewer symbolic states expanded.
 *
 * Emits one machine-readable `BENCH {...}` JSON line.
 */

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Ablation: dataflow prefilter + constant facts");

    struct Config {
        const char *name;
        bool dataflow;
    };
    const Config configs[] = {
        {"dataflow on", true},
        {"dataflow off", false},
    };

    struct Totals {
        int racy{0};
        int refuted{0};
        int surviving{0};
        int missed{0};
        int64_t statesExpanded{0};
        int64_t constPruned{0};
        double refutationMs{0};
        double dataflowMs{0};
    };
    Totals totals[2];

    std::printf("%-14s %8s %8s %10s %10s %8s %12s %12s\n", "config",
                "racy", "refuted", "surviving", "missed", "states",
                "dataflow ms", "refute ms");
    for (int c = 0; c < 2; ++c) {
        Totals &t = totals[c];
        for (const auto &spec : corpus::namedAppSpecs()) {
            corpus::BuiltApp built = corpus::buildNamedApp(spec);
            SierraDetector detector(*built.app);
            SierraOptions opts;
            opts.effectPrefilter = configs[c].dataflow;
            opts.refuter.exec.useConstFacts = configs[c].dataflow;
            opts.ifds = false;
            AppReport report = detector.analyze(opts);
            t.racy += report.racyPairs;
            t.refuted += report.racyPairs - report.afterRefutation;
            t.surviving += report.afterRefutation;
            t.missed +=
                corpus::scoreReport(report, built.truth).missedTrueKeys;
            for (const auto &ha : report.perHarness) {
                t.statesExpanded += ha.refutation.exec.statesExpanded;
                t.constPruned += ha.refutation.exec.constPruned;
            }
            t.refutationMs += report.times.refutation * 1e3;
            t.dataflowMs += report.times.dataflow * 1e3;
        }
        std::printf("%-14s %8d %8d %10d %10d %8lld %12.2f %12.2f\n",
                    configs[c].name, t.racy, t.refuted, t.surviving,
                    t.missed, static_cast<long long>(t.statesExpanded),
                    t.dataflowMs, t.refutationMs);
    }

    const Totals &on = totals[0];
    const Totals &off = totals[1];
    bool preserved = on.missed == off.missed;
    bool less_work = on.surviving < off.surviving ||
                     on.statesExpanded < off.statesExpanded;
    std::printf("\nground truth preserved: %s; strictly less work: %s "
                "(edges pruned by constants: %lld)\n",
                preserved ? "yes" : "NO (regression!)",
                less_work ? "yes" : "NO (regression!)",
                static_cast<long long>(on.constPruned));

    bench::benchJson(
        "ablation_dataflow",
        "{\"bench\":\"ablation_dataflow\",\"corpus\":20,"
        "\"on\":{\"racy\":%d,\"refuted\":%d,\"surviving\":%d,"
        "\"missed\":%d,\"states\":%lld,\"const_pruned\":%lld,"
        "\"dataflow_ms\":%.2f,\"refutation_ms\":%.2f},"
        "\"off\":{\"racy\":%d,\"refuted\":%d,\"surviving\":%d,"
        "\"missed\":%d,\"states\":%lld,"
        "\"refutation_ms\":%.2f},"
        "\"preserved\":%s,\"less_work\":%s}",
        on.racy, on.refuted, on.surviving, on.missed,
        static_cast<long long>(on.statesExpanded),
        static_cast<long long>(on.constPruned), on.dataflowMs,
        on.refutationMs, off.racy, off.refuted, off.surviving,
        off.missed, static_cast<long long>(off.statesExpanded),
        off.refutationMs, preserved ? "true" : "false",
        less_work ? "true" : "false");
    return preserved && less_work ? 0 : 1;
}
