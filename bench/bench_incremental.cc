/**
 * @file
 * Incremental re-analysis benchmark: the `sierra serve` store on the
 * 20-app corpus (docs/CACHING.md).
 *
 * Three phases against one artifact store:
 *   1. cold  -- every app analyzed from an empty store;
 *   2. warm  -- every app re-submitted unchanged: all per-harness
 *      artifacts reuse, no pipeline runs;
 *   3. edit  -- one method body of one app gets a dead no-op appended,
 *      then the whole corpus is re-submitted: only the harnesses whose
 *      footprint covers the edit recompute.
 *
 * Checked invariants (exit nonzero on violation):
 *   - warm reports are byte-identical to cold reports, per app;
 *   - the post-edit report is byte-identical to a fresh-store cold
 *     analysis of the identically edited app;
 *   - the edit dirties exactly one method;
 *   - warm corpus passes (phases 2 and 3) are >= 5x faster than cold.
 *
 * Emits one machine-readable `BENCH {...}` JSON line.
 */

#include <chrono>

#include "bench_util.hh"
#include "serve/incremental.hh"

namespace {

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Append a dead no-op to the first app method body: the benign edit
 *  of docs/CACHING.md's walkthrough. Returns the qualified name. */
std::string
appendNop(sierra::framework::App &app)
{
    for (sierra::air::Klass *klass : app.module().classes()) {
        if (klass->isFramework() || klass->isSynthetic())
            continue;
        for (const auto &m : klass->methods()) {
            if (m->hasBody()) {
                m->instrs().push_back(sierra::air::Instruction{});
                return m->qualifiedName();
            }
        }
    }
    return {};
}

} // namespace

int
main()
{
    using namespace sierra;
    namespace store = analysis::store;
    bench::header("Incremental re-analysis (serve store)");

    const std::string edited_app = "OpenSudoku";
    const int kCycles = 3;
    SierraOptions options;

    // Each phase times analyzer.analyze() only: app construction
    // stands in for the client's submission (parse) cost, identical
    // across phases, and is excluded so the ratio isolates what the
    // store actually saves. The whole three-phase experiment runs
    // kCycles times against fresh stores; per-phase minima damp
    // scheduler noise while the invariants must hold on EVERY cycle.
    auto buildCorpus = [] {
        std::vector<corpus::BuiltApp> apps;
        for (const auto &spec : corpus::namedAppSpecs())
            apps.push_back(corpus::buildNamedApp(spec));
        return apps;
    };

    double cold_ms = 0, warm_ms = 0, edit_ms = 0;
    int cold_harnesses = 0;
    bool warm_identical = true;
    int warm_reused = 0, warm_computed = 0;
    std::string edited_method;
    int edit_methods_changed = -1;
    int edit_reused = 0, edit_computed = 0;
    std::string edit_report;

    for (int cycle = 0; cycle < kCycles; ++cycle) {
        store::Store st; // memory-only: measures analysis, not disk
        serve::IncrementalAnalyzer analyzer(st);

        // Phase 1: cold. Every method hashes as changed, every
        // harness computes, every artifact persists.
        std::map<std::string, std::string> cold_reports;
        cold_harnesses = 0;
        std::vector<corpus::BuiltApp> apps = buildCorpus();
        auto t0 = std::chrono::steady_clock::now();
        for (corpus::BuiltApp &built : apps) {
            serve::IncrementalResult r =
                analyzer.analyze(*built.app, options);
            cold_reports[built.app->name()] = r.reportText;
            cold_harnesses += r.harnessesComputed;
        }
        double cycle_cold = msSince(t0);

        // Phase 2: warm. Unchanged re-submission of the corpus.
        warm_reused = 0;
        warm_computed = 0;
        apps = buildCorpus();
        t0 = std::chrono::steady_clock::now();
        for (corpus::BuiltApp &built : apps) {
            serve::IncrementalResult r =
                analyzer.analyze(*built.app, options);
            warm_reused += r.harnessesReused;
            warm_computed += r.harnessesComputed;
            if (r.reportText != cold_reports[built.app->name()])
                warm_identical = false;
        }
        double cycle_warm = msSince(t0);

        // Phase 3: one-method edit, whole corpus re-submitted.
        edit_reused = 0;
        edit_computed = 0;
        apps = buildCorpus();
        for (corpus::BuiltApp &built : apps) {
            if (built.app->name() == edited_app)
                edited_method = appendNop(*built.app);
        }
        t0 = std::chrono::steady_clock::now();
        for (corpus::BuiltApp &built : apps) {
            serve::IncrementalResult r =
                analyzer.analyze(*built.app, options);
            if (built.app->name() == edited_app) {
                edit_methods_changed = r.methodsChanged;
                edit_report = r.reportText;
            }
            edit_reused += r.harnessesReused;
            edit_computed += r.harnessesComputed;
        }
        double cycle_edit = msSince(t0);

        if (cycle == 0) {
            cold_ms = cycle_cold;
            warm_ms = cycle_warm;
            edit_ms = cycle_edit;
        } else {
            cold_ms = std::min(cold_ms, cycle_cold);
            warm_ms = std::min(warm_ms, cycle_warm);
            edit_ms = std::min(edit_ms, cycle_edit);
        }
    }

    // The edited app's warm report must match a fresh-store cold
    // analysis of the identically edited app.
    store::Store fresh;
    serve::IncrementalAnalyzer cold_analyzer(fresh);
    corpus::BuiltApp rebuilt = corpus::buildNamedApp(edited_app);
    appendNop(*rebuilt.app);
    serve::IncrementalResult edited_cold =
        cold_analyzer.analyze(*rebuilt.app, options);
    bool edit_identical = edit_report == edited_cold.reportText;

    double warm_speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
    double edit_speedup = edit_ms > 0 ? cold_ms / edit_ms : 0;

    std::printf("%-22s %10s %10s %10s %10s\n", "phase", "ms",
                "computed", "reused", "speedup");
    bench::row("cold", "%10.2f %10d %10d %10s", cold_ms,
               cold_harnesses, 0, "1.0x");
    bench::row("warm (no edit)", "%10.2f %10d %10d %9.1fx", warm_ms,
               warm_computed, warm_reused, warm_speedup);
    bench::row("warm (1-method edit)", "%10.2f %10d %10d %9.1fx",
               edit_ms, edit_computed, edit_reused, edit_speedup);

    bool all_reused = warm_computed == 0 &&
                      warm_reused == cold_harnesses;
    bool exact_dirty = edit_methods_changed == 1;
    bool fast_enough = warm_speedup >= 5.0 && edit_speedup >= 5.0;
    std::printf("\nwarm == cold bytes: %s; edited warm == edited cold "
                "bytes: %s;\nall artifacts reused when unchanged: %s; "
                "edit dirtied one method: %s;\n>= 5x speedup: %s "
                "(edited method: %s)\n",
                warm_identical ? "yes" : "NO (regression!)",
                edit_identical ? "yes" : "NO (regression!)",
                all_reused ? "yes" : "NO (regression!)",
                exact_dirty ? "yes" : "NO (regression!)",
                fast_enough ? "yes" : "NO (regression!)",
                edited_method.c_str());

    bench::benchJson(
        "incremental",
        "{\"bench\":\"incremental\",\"corpus\":20,"
        "\"harnesses\":%d,"
        "\"cold_ms\":%.2f,"
        "\"warm\":{\"ms\":%.2f,\"computed\":%d,\"reused\":%d,"
        "\"speedup\":%.1f},"
        "\"edit\":{\"ms\":%.2f,\"computed\":%d,\"reused\":%d,"
        "\"methods_changed\":%d,\"speedup\":%.1f},"
        "\"warm_identical\":%s,\"edit_identical\":%s,"
        "\"all_reused\":%s}",
        cold_harnesses, cold_ms, warm_ms, warm_computed, warm_reused,
        warm_speedup, edit_ms, edit_computed, edit_reused,
        edit_methods_changed, edit_speedup,
        warm_identical ? "true" : "false",
        edit_identical ? "true" : "false",
        all_reused ? "true" : "false");
    return warm_identical && edit_identical && all_reused &&
                   exact_dirty && fast_enough
               ? 0
               : 1;
}
