/**
 * @file
 * Ablation: the refutation caches (paper Section 5 "Caching").
 *
 * Compares three configurations over the 20-app corpus:
 *   - memo only (default): sound per-query memoization;
 *   - paper node cache: additionally prune any phase-A path that enters
 *     a call-graph node visited by an earlier refuted query (the
 *     paper's scheme; unsound, may refute true races);
 *   - no budget: a tiny path budget, to show budget-exhaustion behavior
 *     (candidates are conservatively reported).
 */

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Ablation: refutation caching");

    struct Config {
        const char *name;
        bool nodeCache;
        int maxSteps;
    };
    const Config configs[] = {
        {"memo only", false, 200000},
        {"paper node cache", true, 200000},
        {"tiny budget", false, 12},
    };

    std::printf("%-18s %8s %8s %6s %6s %8s %10s\n", "config", "racy",
                "refuted", "TP", "FP", "missed", "time ms");
    for (const auto &config : configs) {
        int racy = 0;
        int refuted = 0;
        int tp = 0;
        int fp = 0;
        int missed = 0;
        double ms = 0;
        for (const auto &spec : corpus::namedAppSpecs()) {
            corpus::BuiltApp built = corpus::buildNamedApp(spec);
            SierraDetector detector(*built.app);
            SierraOptions opts;
            opts.refuter.exec.useNodeCache = config.nodeCache;
            opts.refuter.exec.maxSteps = config.maxSteps;
            AppReport report = detector.analyze(opts);
            racy += report.racyPairs;
            refuted += report.racyPairs - report.afterRefutation;
            corpus::Score score =
                corpus::scoreReport(report, built.truth);
            tp += score.truePositives;
            fp += score.falsePositives;
            missed += score.missedTrueKeys;
            ms += report.times.refutation * 1e3;
        }
        std::printf("%-18s %8d %8d %6d %6d %8d %10.2f\n", config.name,
                    racy, refuted, tp, fp, missed, ms);
    }
    std::printf("\nExpected: the node cache refutes at least as many "
                "candidates (faster but\nunsound: may add misses); the "
                "tiny budget refutes fewer (more FPs, never\nmore "
                "misses).\n");
    return 0;
}
