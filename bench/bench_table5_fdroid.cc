/**
 * @file
 * Paper Table 5: medians over the 174-app F-Droid dataset analogue
 * (effectiveness and efficiency, Section 6.6).
 */

#include <cinttypes>

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Table 5: 174-app dataset (medians)");

    std::vector<double> size, harnesses, actions, hb, ordered, racy,
        after, cg, hbg_t, refute, total;
    int apps_with_fp = 0;
    int apps_with_miss = 0;

    for (int i = 0; i < corpus::kFdroidAppCount; ++i) {
        bench::AppStats s = bench::evaluateApp(
            "fdroid", corpus::buildFdroidApp(i), {});
        size.push_back(static_cast<double>(s.codeSize));
        harnesses.push_back(s.harnesses);
        actions.push_back(s.actions);
        hb.push_back(static_cast<double>(s.hbEdges));
        ordered.push_back(s.orderedPct);
        racy.push_back(s.racyAs);
        after.push_back(s.afterRefutation);
        cg.push_back(s.times.cgPa * 1e3);
        hbg_t.push_back(s.times.hbg * 1e3);
        refute.push_back(s.times.refutation * 1e3);
        total.push_back(s.times.total * 1e3);
        apps_with_fp += s.falsePositives > 0;
        apps_with_miss += s.missed > 0;
    }

    bench::row("apps", "%d", corpus::kFdroidAppCount);
    bench::row("model size (B)", "%.0f", bench::median(size));
    bench::row("harnesses", "%.1f", bench::median(harnesses));
    bench::row("actions", "%.1f", bench::median(actions));
    bench::row("HB edges", "%.0f", bench::median(hb));
    bench::row("ordered %", "%.1f", bench::median(ordered));
    bench::row("racy pairs", "%.1f", bench::median(racy));
    bench::row("after refut.", "%.1f", bench::median(after));
    bench::row("cg+pa (ms)", "%.2f", bench::median(cg));
    bench::row("hbg (ms)", "%.2f", bench::median(hbg_t));
    bench::row("refute (ms)", "%.2f", bench::median(refute));
    bench::row("total (ms)", "%.2f", bench::median(total));
    bench::row("apps w/ FPs", "%d", apps_with_fp);
    bench::row("apps w/ misses", "%d", apps_with_miss);

    std::printf("\nPaper medians: size 1114KB, harnesses 4.5, actions "
                "67.5, HB edges 1223,\nordered 17.3%%, racy pairs 68, "
                "after refutation 43.5, CG 139s, HBG 27s,\nrefutation "
                "648s, total 960s.\n");
    return 0;
}
