/**
 * @file
 * Paper Table 4: SIERRA efficiency -- per-stage analysis time.
 *
 * The paper reports seconds on real APKs with WALA; the model corpus
 * runs in milliseconds, so times are printed in ms. The *shape* to
 * check against the paper: call graph + pointer analysis and symbolic
 * refutation dominate, SHBG construction is cheap.
 */

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Table 4: SIERRA efficiency (times in milliseconds)");
    std::printf("%-18s %10s %8s %12s %10s\n", "App", "CG+PA", "HBG",
                "Refutation", "Total");

    std::vector<double> cg, hbg, refute, total;
    for (const auto &spec : corpus::namedAppSpecs()) {
        corpus::BuiltApp built = corpus::buildNamedApp(spec);
        SierraDetector detector(*built.app);
        AppReport report = detector.analyze({});
        const StageTimes &t = report.times;
        std::printf("%-18s %10.2f %8.2f %12.2f %10.2f\n",
                    spec.name.c_str(), t.cgPa * 1e3, t.hbg * 1e3,
                    t.refutation * 1e3, t.total * 1e3);
        cg.push_back(t.cgPa * 1e3);
        hbg.push_back(t.hbg * 1e3);
        refute.push_back(t.refutation * 1e3);
        total.push_back(t.total * 1e3);
    }
    std::printf("%-18s %10.2f %8.2f %12.2f %10.2f\n", "Median",
                bench::median(cg), bench::median(hbg),
                bench::median(refute), bench::median(total));
    std::printf("\nPaper medians (seconds, real APKs): CG+PA 1310, HBG "
                "28.5, refutation 560.5,\ntotal 1899. Expected shape: "
                "HBG << CG+PA and refutation.\n");
    return 0;
}
