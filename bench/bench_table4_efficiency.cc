/**
 * @file
 * Paper Table 4: SIERRA efficiency -- per-stage analysis time, driven
 * by the metrics registry (SierraOptions::metrics) so the table and
 * the counter-derived rates come from the same instrumented run.
 *
 * The paper reports seconds on real APKs with WALA; the model corpus
 * runs in milliseconds, so times are printed in ms. The *shape* to
 * check against the paper: call graph + pointer analysis and symbolic
 * refutation dominate, SHBG construction is cheap.
 *
 * Reproduce with: ./build/bench/bench_table4_efficiency
 * (optionally SIERRA_TRACE=table4.json to also capture a trace).
 */

#include "bench_util.hh"

#include "util/metrics.hh"

int
main()
{
    using namespace sierra;
    bench::header("Table 4: SIERRA efficiency (times in milliseconds)");
    std::printf("%-18s %8s %7s %7s %7s %10s %8s %8s\n", "App", "CG+PA",
                "HBG", "Racy", "Lock", "Refute", "Cpu", "Wall");

    std::vector<double> cg, hbg, racy, lockset, refute, cpu, wall;
    util::metrics::Registry all;
    for (const auto &spec : corpus::namedAppSpecs()) {
        corpus::BuiltApp built = corpus::buildNamedApp(spec);
        SierraDetector detector(*built.app);
        SierraOptions options;
        options.metrics = &all;
        AppReport report = detector.analyze(options);
        const StageTimes &t = report.times;
        std::printf("%-18s %8.2f %7.2f %7.2f %7.2f %10.2f %8.2f "
                    "%8.2f\n",
                    spec.name.c_str(), t.cgPa * 1e3, t.hbg * 1e3,
                    (t.dataflow + t.escape + t.racy) * 1e3,
                    t.lockset * 1e3, t.refutation * 1e3,
                    t.totalCpu * 1e3, t.total * 1e3);
        cg.push_back(t.cgPa * 1e3);
        hbg.push_back(t.hbg * 1e3);
        racy.push_back((t.dataflow + t.escape + t.racy) * 1e3);
        lockset.push_back(t.lockset * 1e3);
        refute.push_back(t.refutation * 1e3);
        cpu.push_back(t.totalCpu * 1e3);
        wall.push_back(t.total * 1e3);
    }
    std::printf("%-18s %8.2f %7.2f %7.2f %7.2f %10.2f %8.2f %8.2f\n",
                "Median", bench::median(cg), bench::median(hbg),
                bench::median(racy), bench::median(lockset),
                bench::median(refute), bench::median(cpu),
                bench::median(wall));

    // Counter-derived work rates over the whole corpus, straight from
    // the registry the pipeline filled.
    const int64_t considered = all.counter("race.access_pairs_considered");
    const int64_t skipped = all.counter("race.prefilter_skipped");
    const int64_t queries = all.counter("symbolic.queries");
    const int64_t states = all.counter("symbolic.states_expanded");
    const int64_t hits = all.counter("symbolic.cache_hits");
    const double cpu_s =
        all.histogram("harness.cpu.seconds").sum;
    std::printf("\ncorpus totals (metrics registry):\n");
    std::printf("  pta worklist iterations: %lld, instr visits: %lld\n",
                (long long)all.counter("pta.worklist_iterations"),
                (long long)all.counter("pta.instr_visits"));
    std::printf("  shbg direct edges: %lld, closure pairs: %lld\n",
                (long long)all.counter("shbg.direct_edges"),
                (long long)all.counter("shbg.closure_pairs"));
    std::printf("  access pairs considered: %lld, prefilter skipped: "
                "%.1f%%\n",
                (long long)considered,
                considered ? 100.0 * skipped / considered : 0.0);
    std::printf("  symbolic queries: %lld, states expanded: %lld "
                "(%.0f states/cpu-s), cache hit rate: %.1f%%\n",
                (long long)queries, (long long)states,
                cpu_s > 0 ? states / cpu_s : 0.0,
                (hits + states) ? 100.0 * hits / (hits + states) : 0.0);
    std::printf("  refuted: lockset %lld, symbolic %lld, surviving "
                "%lld\n",
                (long long)all.counter("refuted_by.lockset"),
                (long long)all.counter("refuted_by.symbolic"),
                (long long)all.counter("refuted_by.none"));

    bench::benchJson(
        "table4_efficiency",
        "{\"bench\":\"table4_efficiency\","
        "\"median_ms\":{\"cg_pa\":%.2f,\"hbg\":%.2f,"
        "\"racy\":%.2f,\"lockset\":%.2f,\"refutation\":%.2f,"
        "\"total\":%.2f},"
        "\"counters\":{\"symbolic_queries\":%lld,"
        "\"states_expanded\":%lld,\"cache_hits\":%lld,"
        "\"pairs_considered\":%lld,\"prefilter_skipped\":%lld,"
        "\"pta_delta_props\":%lld,\"arena_bytes\":%lld,"
        "\"peak_rss_bytes\":%lld}"
        "}",
        bench::median(cg), bench::median(hbg), bench::median(racy),
        bench::median(lockset), bench::median(refute),
        bench::median(wall), (long long)queries, (long long)states,
        (long long)hits, (long long)considered, (long long)skipped,
        (long long)all.counter("pta.delta_props"),
        (long long)all.counter("arena.bytes_allocated"),
        (long long)all.counter("mem.peak_rss_bytes"));

    std::printf("\nPaper medians (seconds, real APKs): CG+PA 1310, HBG "
                "28.5, refutation 560.5,\ntotal 1899. Expected shape: "
                "HBG << CG+PA and refutation.\n");
    return 0;
}
