/**
 * @file
 * Parallel-scaling bench: wall-clock time of the full static pipeline
 * over the 20-app named corpus at 1/2/4/8 jobs.
 *
 * Parallelism comes from the engine itself (per-harness tasks plus
 * sharded refutation, see docs/INTERNALS.md "Threading model"); apps
 * are analyzed one after another, so the measured speedup is the
 * engine's, not an embarrassingly-parallel corpus sweep. The report
 * contents are asserted identical across jobs counts while timing.
 *
 * Emits one machine-readable `BENCH {...}` JSON line mapping jobs to
 * seconds. Meaningful speedup needs real cores: hw_threads is included
 * in the line so a 1-core CI box is not mistaken for a regression.
 */

#include <chrono>
#include <thread>

#include "bench_util.hh"

namespace {

double
runCorpus(std::vector<sierra::SierraDetector *> &detectors, int jobs,
          std::string *fingerprint)
{
    using clock = std::chrono::steady_clock;
    std::string combined;
    auto t0 = clock::now();
    for (sierra::SierraDetector *detector : detectors) {
        sierra::SierraOptions options;
        options.jobs = jobs;
        sierra::AppReport report = detector->analyze(options);
        combined += formatReport(report, 1000, /*with_times=*/false);
    }
    double seconds = std::chrono::duration<double>(clock::now() - t0)
                         .count();
    *fingerprint = std::move(combined);
    return seconds;
}

} // namespace

int
main()
{
    using namespace sierra;
    bench::header("Parallel scaling: full pipeline, 20-app corpus");

    // Build every app (and its harnesses) once, outside the timed
    // region; analyze() is re-runnable.
    std::vector<corpus::BuiltApp> apps;
    std::vector<std::unique_ptr<SierraDetector>> detectors;
    for (const auto &spec : corpus::namedAppSpecs()) {
        apps.push_back(corpus::buildNamedApp(spec));
        detectors.push_back(
            std::make_unique<SierraDetector>(*apps.back().app));
    }
    std::vector<SierraDetector *> ptrs;
    for (auto &d : detectors)
        ptrs.push_back(d.get());

    const int job_counts[] = {1, 2, 4, 8};
    std::vector<double> seconds;
    std::string reference;
    std::printf("%-8s %12s %10s\n", "jobs", "seconds", "speedup");
    for (int jobs : job_counts) {
        std::string fingerprint;
        // Warm-up pass so first-touch costs don't bias jobs=1.
        if (jobs == 1)
            runCorpus(ptrs, 1, &fingerprint);
        double s = runCorpus(ptrs, jobs, &fingerprint);
        if (jobs == 1) {
            reference = fingerprint;
        } else if (fingerprint != reference) {
            std::printf("ERROR: report at jobs=%d differs from "
                        "jobs=1\n",
                        jobs);
            return 1;
        }
        seconds.push_back(s);
        std::printf("%-8d %12.3f %9.2fx\n", jobs, s,
                    seconds.front() / s);
    }

    double speedup4 = seconds[0] / seconds[2];
    unsigned hw = std::thread::hardware_concurrency();
    std::printf("\nspeedup at 4 jobs over 1 job: %.2fx "
                "(%u hardware thread%s)\n",
                speedup4, hw, hw == 1 ? "" : "s");

    std::string runs;
    for (size_t i = 0; i < seconds.size(); ++i) {
        char one[96];
        std::snprintf(one, sizeof(one),
                      "%s{\"jobs\":%d,\"seconds\":%.6f}", i ? "," : "",
                      job_counts[i], seconds[i]);
        runs += one;
    }
    bench::benchJson("parallel_scaling",
                     "{\"bench\":\"parallel_scaling\",\"corpus\":20,"
                     "\"hw_threads\":%u,\"runs\":[%s],"
                     "\"speedup_4v1\":%.3f}",
                     hw, runs.c_str(), speedup4);
    return 0;
}
