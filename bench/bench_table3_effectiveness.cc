/**
 * @file
 * Paper Table 3: SIERRA effectiveness on the 20-app dataset.
 *
 * Columns mirror the paper: harnesses, actions, HB edges, ordered %,
 * racy pairs without/with action-sensitivity, racy pairs after
 * refutation, true races and false positives (scored automatically
 * against the seeded ground truth instead of manual inspection), and
 * the dynamic detector's (EventRacer-analogue) report count.
 *
 * Expected shapes vs the paper: action-sensitivity shrinks racy pairs
 * by a large factor (paper ~5x); refutation shrinks them further; the
 * static detector's true races far exceed the dynamic detector's.
 */

#include <cinttypes>

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    bench::header("Table 3: SIERRA effectiveness (20-app dataset)");
    std::printf("%-18s %4s %5s %7s %5s %7s %7s %6s %5s %4s %4s %4s\n",
                "App", "Har", "Acts", "HBedge", "Ord%", "RacyNoAS",
                "RacyAS", "AfterR", "True", "FP", "Miss", "ER");

    std::vector<bench::AppStats> all;
    bench::EvalOptions eval;
    eval.ablateContext = true;
    eval.runEventRacer = true;

    for (const auto &spec : corpus::namedAppSpecs()) {
        bench::AppStats s = bench::evaluateApp(
            spec.name, corpus::buildNamedApp(spec), eval);
        std::printf(
            "%-18s %4d %5d %7" PRId64 " %5.1f %7d %7d %6d %5d %4d %4d "
            "%4d\n",
            s.name.c_str(), s.harnesses, s.actions, s.hbEdges,
            s.orderedPct, s.racyNoAs, s.racyAs, s.afterRefutation,
            s.truePositives, s.falsePositives, s.missed,
            s.eventRacerRaces);
        all.push_back(std::move(s));
    }

    auto col = [&](auto getter) {
        std::vector<double> v;
        for (const auto &s : all)
            v.push_back(static_cast<double>(getter(s)));
        return bench::median(v);
    };
    std::printf(
        "%-18s %4.0f %5.0f %7.0f %5.1f %7.0f %7.0f %6.0f %5.1f %4.1f "
        "%4.0f %4.0f\n",
        "Median",
        col([](const auto &s) { return s.harnesses; }),
        col([](const auto &s) { return s.actions; }),
        col([](const auto &s) { return s.hbEdges; }),
        col([](const auto &s) { return s.orderedPct; }),
        col([](const auto &s) { return s.racyNoAs; }),
        col([](const auto &s) { return s.racyAs; }),
        col([](const auto &s) { return s.afterRefutation; }),
        col([](const auto &s) { return s.truePositives; }),
        col([](const auto &s) { return s.falsePositives; }),
        col([](const auto &s) { return s.missed; }),
        col([](const auto &s) { return s.eventRacerRaces; }));

    std::printf("\nPaper medians for reference: harnesses 10.5, actions "
                "160, HB edges 2755,\nordered 22%%, racy w/o AS 431, "
                "with AS 80.5, after refutation 33, true 29.5,\nFP 8.5, "
                "EventRacer 4.\n");
    return 0;
}
