/**
 * @file
 * Paper Fig. 1: the intra-component RecycleView/AsyncTask race.
 *
 * Builds the NewsActivity model (adapter updated by doInBackground,
 * cache refreshed by onPostExecute, read by onScroll), runs the full
 * pipeline and shows that the background-vs-scroll races are reported
 * while the AsyncTask chain itself is ordered.
 */

#include "bench_util.hh"
#include "corpus/patterns.hh"

int
main()
{
    using namespace sierra;
    bench::header("Fig. 1: intra-component race (NewsActivity)");

    corpus::AppFactory factory("fig1-news");
    auto &act = factory.addActivity("NewsActivity");
    corpus::addAsyncNewsRace(factory, act);
    corpus::BuiltApp built = factory.finish();

    SierraDetector detector(*built.app);
    HarnessAnalysis ha = detector.analyzeActivity("NewsActivity", {});

    std::printf("actions (%d):\n", ha.numActions());
    for (const auto &action : ha.pta->actions.all()) {
        if (action.kind == analysis::ActionKind::HarnessRoot)
            continue;
        std::printf("  [%2d] %-12s %-36s %s\n", action.id,
                    analysis::actionKindName(action.kind),
                    action.label.c_str(),
                    analysis::threadAffinityName(action.affinity));
    }

    int bg = bench::findAction(ha, "doInBackground");
    int post = bench::findAction(ha, "onPostExecute");
    int scroll = bench::findAction(ha, "onScroll");
    std::printf("\nHB: doInBackground < onPostExecute: %s\n",
                ha.shbg->reaches(bg, post) ? "yes" : "NO");
    std::printf("HB: doInBackground vs onScroll unordered: %s\n",
                ha.shbg->unordered(bg, scroll) ? "yes" : "NO");

    std::printf("\nsurviving races:\n");
    for (const auto &p : ha.pairs) {
        if (!p.refuted)
            std::printf("  %s\n",
                        p.toString(*ha.pta, ha.accesses).c_str());
    }
    corpus::Score score =
        corpus::scoreKeys(bench::survivingKeys(ha), built.truth);
    std::printf("\nscore: TP=%d FP=%d missed=%d (expected: 3 seeded "
                "adapter races found)\n",
                score.truePositives, score.falsePositives,
                score.missedTrueKeys);
    return 0;
}
