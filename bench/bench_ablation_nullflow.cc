/**
 * @file
 * Ablation: null-value-flow severity classification.
 *
 * Two configurations over the full corpus (20 named apps + the
 * F-Droid-analogue apps):
 *   - nullflow on (default): surviving pairs are classified
 *     HARMFUL / GUARDED / UNKNOWN and the report is severity-ranked;
 *   - nullflow off: the pre-stage pipeline, byte-for-byte.
 *
 * Contract checked here (exit non-zero on any violation):
 *   1. off-config reports are byte-identical to the pinned
 *      tests/golden/nullflow_off/ snapshots (named apps) and carry no
 *      severity tokens anywhere (all apps) — the stage is additive;
 *   2. every ground-truth key seeded harmful classifies HARMFUL with
 *      the stage on, and no seeded trap ever does;
 *   3. ground truth is preserved in both configurations (severity
 *      never changes which races survive);
 *   4. the on-config report is byte-identical at --jobs 1 and 4.
 *
 * Emits one machine-readable `BENCH {...}` JSON line.
 */

#include <fstream>
#include <sstream>

#include "bench_util.hh"

#ifndef SIERRA_GOLDEN_DIR
#define SIERRA_GOLDEN_DIR "tests/golden"
#endif

namespace {

std::string
goldenOffPath(const std::string &app_name)
{
    std::string fname;
    for (char c : app_name)
        fname += (c == ' ' || c == '/') ? '_' : c;
    return std::string(SIERRA_GOLDEN_DIR) + "/nullflow_off/" + fname +
           ".report.txt";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main()
{
    using namespace sierra;
    bench::header("Ablation: null-value-flow severity classification");

    struct Totals {
        int surviving{0};
        int harmful{0};
        int guarded{0};
        int missed{0};
        int64_t queries{0};
        int64_t storesIndexed{0};
        double nullflowMs{0};
    };
    Totals on, off;

    int golden_mismatches = 0;
    int severity_leaks = 0;     // severity tokens in ablated output
    int harmful_keys = 0;       // ground-truth keys seeded harmful
    int harmful_missed = 0;     // ...that did not classify HARMFUL
    int harmful_traps = 0;      // FpTrap keys rated HARMFUL
    // KnownFp keys rated HARMFUL: allowed, informational only. The
    // implicit-dependency FP class (paper Section 6.5) is deliberately
    // shape-identical to a real null crash — "beyond static
    // reasoning" covers the severity verdict too.
    int known_fp_harmful = 0;
    int jobs_divergences = 0;   // on-config jobs 1 vs 4 byte diffs

    auto run = [&](const std::string &name, corpus::BuiltApp built,
                   bool compare_golden) {
        SierraDetector detector(*built.app);

        // Off configuration: the stage must vanish without residue.
        SierraOptions off_opts;
        off_opts.nullflow = false;
        AppReport off_report = detector.analyze(off_opts);
        std::string off_text = formatReport(off_report, 50, false);
        off.surviving += off_report.afterRefutation;
        off.missed += corpus::scoreReport(off_report, built.truth)
                          .missedTrueKeys;
        if (off_text.find("severity:") != std::string::npos ||
            off_text.find("harmful:") != std::string::npos) {
            ++severity_leaks;
            std::printf("  !! severity tokens in ablated %s report\n",
                        name.c_str());
        }
        if (compare_golden &&
            off_text != readFile(goldenOffPath(name))) {
            ++golden_mismatches;
            std::printf("  !! %s diverged from %s\n", name.c_str(),
                        goldenOffPath(name).c_str());
        }

        // On configuration, serial.
        AppReport report = detector.analyze({});
        on.surviving += report.afterRefutation;
        on.harmful += report.harmfulRaces;
        on.guarded += report.guardedRaces;
        on.missed +=
            corpus::scoreReport(report, built.truth).missedTrueKeys;
        for (const auto &ha : report.perHarness) {
            on.queries += ha.nullflowStats.queries;
            on.storesIndexed += ha.nullflowStats.storesIndexed;
        }
        on.nullflowMs += report.times.nullflow * 1e3;

        for (const auto &seed : built.truth.seeded) {
            bool is_harmful_seed =
                seed.cls == corpus::SeedClass::TrueRace &&
                built.truth.isHarmfulKey(seed.fieldKey);
            bool classified = false;
            for (const auto &race : report.races) {
                if (race.refuted || race.fieldKey != seed.fieldKey)
                    continue;
                if (race.severity == analysis::NullVerdict::Harmful)
                    classified = true;
            }
            if (is_harmful_seed) {
                ++harmful_keys;
                if (!classified) {
                    ++harmful_missed;
                    std::printf("  !! harmful key %s not HARMFUL in "
                                "%s\n",
                                seed.fieldKey.c_str(), name.c_str());
                }
            }
            if (classified &&
                seed.cls == corpus::SeedClass::FpTrap) {
                ++harmful_traps;
                std::printf("  !! trap key %s rated HARMFUL in %s\n",
                            seed.fieldKey.c_str(), name.c_str());
            }
            if (classified &&
                seed.cls == corpus::SeedClass::KnownFp)
                ++known_fp_harmful;
        }

        // On configuration, fanned out: reports are plan-order merged,
        // so the bytes must not depend on the worker count.
        SierraOptions par;
        par.jobs = 4;
        if (formatReport(detector.analyze(par), 50, false) !=
            formatReport(report, 50, false)) {
            ++jobs_divergences;
            std::printf("  !! %s report differs at jobs 1 vs 4\n",
                        name.c_str());
        }
    };

    for (const auto &spec : corpus::namedAppSpecs())
        run(spec.name, corpus::buildNamedApp(spec), true);
    for (int i = 0; i < corpus::kFdroidAppCount; ++i)
        run("fdroid-" + std::to_string(i), corpus::buildFdroidApp(i),
            false);

    std::printf("%-10s %10s %8s %8s %7s %9s %8s %9s\n", "config",
                "surviving", "harmful", "guarded", "missed", "queries",
                "stores", "stage ms");
    std::printf("%-10s %10d %8d %8d %7d %9lld %8lld %9.2f\n",
                "null on", on.surviving, on.harmful, on.guarded,
                on.missed, static_cast<long long>(on.queries),
                static_cast<long long>(on.storesIndexed),
                on.nullflowMs);
    std::printf("%-10s %10d %8s %8s %7d %9s %8s %9s\n", "null off",
                off.surviving, "-", "-", off.missed, "-", "-", "-");

    bool additive = golden_mismatches == 0 && severity_leaks == 0;
    bool truth_classified = harmful_missed == 0 && harmful_traps == 0;
    bool preserved =
        on.missed == 0 && off.missed == 0 &&
        on.surviving == off.surviving;
    bool deterministic = jobs_divergences == 0;
    std::printf("\nstage additive (off == pre-stage bytes): %s; "
                "harmful keys classified: %s (%d/%d, traps flagged: "
                "%d, known-FP harmful: %d); survival preserved: %s; "
                "jobs-deterministic: %s\n",
                additive ? "yes" : "NO (regression!)",
                truth_classified ? "yes" : "NO (regression!)",
                harmful_keys - harmful_missed, harmful_keys,
                harmful_traps, known_fp_harmful,
                preserved ? "yes" : "NO (regression!)",
                deterministic ? "yes" : "NO (regression!)");

    bench::benchJson(
        "ablation_nullflow",
        "{\"bench\":\"ablation_nullflow\",\"corpus\":%d,"
        "\"on\":{\"surviving\":%d,\"harmful\":%d,\"guarded\":%d,"
        "\"missed\":%d,\"queries\":%lld,\"stores_indexed\":%lld,"
        "\"nullflow_ms\":%.2f},"
        "\"off\":{\"surviving\":%d,\"missed\":%d},"
        "\"harmful_keys\":%d,\"harmful_missed\":%d,"
        "\"harmful_traps\":%d,\"known_fp_harmful\":%d,"
        "\"golden_mismatches\":%d,"
        "\"additive\":%s,\"truth_classified\":%s,\"preserved\":%s,"
        "\"jobs_deterministic\":%s}",
        20 + corpus::kFdroidAppCount, on.surviving, on.harmful,
        on.guarded, on.missed, static_cast<long long>(on.queries),
        static_cast<long long>(on.storesIndexed), on.nullflowMs,
        off.surviving, off.missed, harmful_keys, harmful_missed,
        harmful_traps, known_fp_harmful, golden_mismatches,
        additive ? "true" : "false",
        truth_classified ? "true" : "false",
        preserved ? "true" : "false",
        deterministic ? "true" : "false");
    return additive && truth_classified && preserved && deterministic
               ? 0
               : 1;
}
