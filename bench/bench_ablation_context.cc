/**
 * @file
 * Ablation: context policies for the pointer analysis (paper Section
 * 3.3 / Table 3 columns 6-7).
 *
 * Sweeps insensitive / k-cfa / k-obj / hybrid / action-sensitive (and
 * k = 1, 2) over a fixed app sample and reports racy pairs and scored
 * false positives before refutation. Expected shape: action-sensitive
 * contexts produce the fewest racy pairs; the alias-trap pattern is a
 * false racy pair under every non-AS policy.
 */

#include "bench_util.hh"

int
main()
{
    using namespace sierra;
    using analysis::ContextPolicy;
    bench::header("Ablation: context policy (racy pairs, FPs; "
                  "no refutation)");

    const char *apps[] = {"OpenSudoku", "TippyTipper", "FBReader",
                          "NotePad", "Beem"};
    struct PolicyCase {
        const char *name;
        ContextPolicy policy;
        int k;
    };
    const PolicyCase cases[] = {
        {"insensitive", ContextPolicy::Insensitive, 1},
        {"1-cfa", ContextPolicy::KCfa, 1},
        {"2-cfa", ContextPolicy::KCfa, 2},
        {"1-obj", ContextPolicy::KObj, 1},
        {"2-obj", ContextPolicy::KObj, 2},
        {"hybrid k=1", ContextPolicy::Hybrid, 1},
        {"hybrid k=2", ContextPolicy::Hybrid, 2},
        {"action-sens k=1", ContextPolicy::ActionSensitive, 1},
        {"action-sens k=2", ContextPolicy::ActionSensitive, 2},
    };

    std::printf("%-16s %10s %10s %10s %10s\n", "policy", "racyPairs",
                "survFP", "nodes", "time ms");
    for (const auto &pc : cases) {
        int64_t racy = 0;
        int fp = 0;
        int64_t nodes = 0;
        double ms = 0;
        for (const char *app : apps) {
            corpus::BuiltApp built = corpus::buildNamedApp(app);
            SierraDetector detector(*built.app);
            SierraOptions opts;
            opts.pta.ctx.policy = pc.policy;
            opts.pta.ctx.k = pc.k;
            opts.pta.ctx.heapK = pc.k;
            opts.runRefutation = false;
            AppReport report = detector.analyze(opts);
            racy += report.racyPairs;
            fp += corpus::scoreReport(report, built.truth)
                      .falsePositives;
            for (const auto &ha : report.perHarness)
                nodes += ha.pta->cg.numNodes();
            ms += report.times.total * 1e3;
        }
        std::printf("%-16s %10lld %10d %10lld %10.2f\n", pc.name,
                    static_cast<long long>(racy), fp,
                    static_cast<long long>(nodes), ms);
    }
    std::printf("\nExpected shape: action-sensitive < hybrid <= "
                "obj/cfa <= insensitive in racy\npairs; the Buffer$ "
                "alias trap contributes FPs to every non-AS row "
                "(paper:\n431 -> 80.5 racy pairs, a ~5x reduction).\n");
    return 0;
}
