/**
 * @file
 * Walk-through of the paper's Fig. 2 inter-component race: a
 * BroadcastReceiver updating a database that the activity's lifecycle
 * callbacks open, close and free.
 *
 * Shows how registration introduces the HB edge onCreate < onReceive
 * while delivery stays unordered with onStop/onDestroy -- the race.
 */

#include <iostream>

#include "corpus/patterns.hh"
#include "sierra/detector.hh"

using namespace sierra;

namespace {

int
actionByLabel(const HarnessAnalysis &ha, const std::string &needle)
{
    for (const auto &a : ha.pta->actions.all()) {
        if (a.label.find(needle) != std::string::npos)
            return a.id;
    }
    return -1;
}

} // namespace

int
main()
{
    corpus::AppFactory factory("receiver-example");
    corpus::ActivityBuilder &activity =
        factory.addActivity("MainActivity");
    corpus::addReceiverDbRace(factory, activity);
    corpus::BuiltApp built = factory.finish();

    SierraDetector detector(*built.app);
    HarnessAnalysis ha = detector.analyzeActivity("MainActivity", {});

    int receive = actionByLabel(ha, "onReceive");
    int create = actionByLabel(ha, "onCreate");
    int stop = actionByLabel(ha, "onStop");
    int destroy = actionByLabel(ha, "onDestroy");

    auto rel = [&](int a, int b) {
        if (ha.shbg->reaches(a, b))
            return "happens-before";
        if (ha.shbg->reaches(b, a))
            return "happens-after";
        return "UNORDERED";
    };
    std::cout << "onCreate vs onReceive:  " << rel(create, receive)
              << " (registration orders delivery)\n";
    std::cout << "onStop vs onReceive:    " << rel(stop, receive)
              << " (the Fig. 2 race window)\n";
    std::cout << "onDestroy vs onReceive: " << rel(destroy, receive)
              << "\n\n";

    std::cout << "reported races:\n";
    for (const auto &pair : ha.pairs) {
        if (!pair.refuted)
            std::cout << "  " << pair.toString(*ha.pta, ha.accesses)
                      << "\n";
    }
    std::cout << "\nThe paper's fixes: register/unregister in "
                 "onStart/onStop, or guard updates\nwith an "
                 "activity-state flag.\n";
    return 0;
}
