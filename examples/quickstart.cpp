/**
 * @file
 * Quickstart: build a small Android-model app with the corpus API, run
 * the full SIERRA pipeline, print the ranked race report, and score it
 * against the seeded ground truth.
 *
 * Run: ./quickstart [app-name]   (default: OpenSudoku)
 */

#include <iostream>

#include "corpus/named_apps.hh"
#include "sierra/detector.hh"

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "OpenSudoku";

    // 1. Build the model app (an AIR module + manifest + layouts).
    sierra::corpus::BuiltApp built =
        sierra::corpus::buildNamedApp(name);

    // 2. Construct the detector: this generates one harness per
    //    activity (paper Fig. 4).
    sierra::SierraDetector detector(*built.app);

    // 3. Run the pipeline: call graph + action-sensitive points-to,
    //    Static Happens-Before Graph, racy pairs, symbolic refutation.
    sierra::SierraOptions options;
    sierra::AppReport report = detector.analyze(options);

    // 4. Show the ranked report.
    std::cout << sierra::formatReport(report);

    // 5. Score against the seeded ground truth.
    sierra::corpus::Score score =
        sierra::corpus::scoreReport(report, built.truth);
    std::cout << "\nground truth: " << score.truePositives
              << " true positives, " << score.falsePositives
              << " false positives, " << score.missedTrueKeys
              << " seeded races missed\n";
    return 0;
}
