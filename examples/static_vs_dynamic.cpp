/**
 * @file
 * The paper's Section 6.4 comparison on one app: run SIERRA and the
 * EventRacer-style dynamic detector side by side and score both
 * against the seeded ground truth.
 *
 * Run: ./static_vs_dynamic [app-name] (default: Beem)
 */

#include <iostream>

#include "corpus/named_apps.hh"
#include "dynamic/event_racer.hh"
#include "sierra/detector.hh"

using namespace sierra;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "Beem";
    corpus::BuiltApp built = corpus::buildNamedApp(name);

    // Static detection.
    SierraDetector detector(*built.app);
    AppReport report = detector.analyze({});
    corpus::Score ss = corpus::scoreReport(report, built.truth);

    // Dynamic detection (3 randomized schedules, like a short fuzzing
    // session with a real device).
    dynamic::EventRacerOptions er_opts;
    er_opts.numSchedules = 3;
    dynamic::EventRacerReport er = runEventRacer(*built.app, er_opts);
    corpus::Score ds = corpus::scoreKeys(er.raceKeys(), built.truth);

    std::cout << "app: " << name << "\n\n";
    std::cout << "SIERRA (static):\n";
    std::cout << "  reports: " << report.afterRefutation
              << "  true races: " << ss.truePositives
              << "  false positives: " << ss.falsePositives
              << "  missed: " << ss.missedTrueKeys << "\n";
    std::cout << "EventRacer-style (dynamic, "
              << er.schedulesRun << " schedules, "
              << er.eventsExecuted << " events):\n";
    std::cout << "  reports: " << er.raceKeys().size()
              << "  true races: " << ds.truePositives
              << "  false positives: " << ds.falsePositives
              << "  missed: " << ds.missedTrueKeys << "\n\n";

    std::cout << "dynamic reports:\n";
    for (const auto &race : er.races) {
        if (!race.filteredByCoverage) {
            std::cout << "  " << race.fieldKey << ": " << race.event1
                      << " || " << race.event2 << "\n";
        }
    }
    std::cout << "\nThe headline (paper Table 3): the static detector "
                 "covers schedules the\ndynamic one never executes -- "
              << ds.missedTrueKeys
              << " seeded race(s) are invisible to the dynamic run "
                 "here.\n";
    return 0;
}
