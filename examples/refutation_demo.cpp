/**
 * @file
 * The paper's Fig. 8 refutation, step by step: a timer runnable and a
 * stop() method that both touch mAccumTime under an mIsRunning guard.
 * Backward symbolic execution proves the "stop before run" ordering
 * infeasible, refuting the candidate; the guard variable's own race
 * survives (a true, benign race -- Section 6.5).
 */

#include <iostream>

#include "corpus/patterns.hh"
#include "sierra/detector.hh"
#include "symbolic/executor.hh"

using namespace sierra;

int
main()
{
    corpus::AppFactory factory("refutation-example");
    corpus::ActivityBuilder &activity =
        factory.addActivity("SudokuPlayActivity");
    corpus::addGuardedTimer(factory, activity);
    corpus::BuiltApp built = factory.finish();

    SierraDetector detector(*built.app);
    SierraOptions no_refute;
    no_refute.runRefutation = false;
    HarnessAnalysis ha =
        detector.analyzeActivity("SudokuPlayActivity", no_refute);

    symbolic::BackwardExecutor executor(*ha.pta, {});

    std::cout << "candidate races and per-ordering verdicts:\n";
    for (const auto &pair : ha.pairs) {
        std::cout << "\n" << pair.toString(*ha.pta, ha.accesses)
                  << "\n";
        const auto &entry = pair.actionPairs.front();
        auto d1 = executor.orderFeasible(ha.accesses[entry.access1],
                                         entry.action1, entry.action2);
        auto d2 = executor.orderFeasible(ha.accesses[entry.access2],
                                         entry.action2, entry.action1);
        std::cout << "  can A run after B completes? "
                  << symbolic::queryVerdictName(d1) << "\n";
        std::cout << "  can B run after A completes? "
                  << symbolic::queryVerdictName(d2) << "\n";
        bool refuted = d1 == symbolic::QueryVerdict::Infeasible ||
                       d2 == symbolic::QueryVerdict::Infeasible;
        std::cout << "  => " << (refuted ? "refuted" : "true race")
                  << "\n";
    }

    std::cout << "\nWhy: reaching the mAccumTime write requires "
                 "mIsRunning != 0, but walking\nbackward through "
                 "stop() either crosses the strong update "
                 "mIsRunning = 0 or the\nfalse branch of its guard -- "
                 "both contradict the path condition.\n";
    return 0;
}
