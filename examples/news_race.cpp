/**
 * @file
 * Walk-through of the paper's Fig. 1 intra-component race: a
 * NewsActivity whose AsyncTask updates an adapter in the background
 * while scroll events read it on the UI thread.
 *
 * Demonstrates building an app with the corpus pattern API, inspecting
 * the discovered actions and Static Happens-Before Graph, and reading
 * the ranked race report.
 */

#include <iostream>

#include "corpus/patterns.hh"
#include "sierra/detector.hh"

using namespace sierra;

int
main()
{
    // Build the Fig. 1 app: one activity with the async/adapter race.
    corpus::AppFactory factory("news-example");
    corpus::ActivityBuilder &activity =
        factory.addActivity("NewsActivity");
    corpus::addAsyncNewsRace(factory, activity);
    corpus::BuiltApp built = factory.finish();

    SierraDetector detector(*built.app);
    HarnessAnalysis analysis =
        detector.analyzeActivity("NewsActivity", {});

    std::cout << "discovered actions:\n";
    for (const auto &action : analysis.pta->actions.all()) {
        if (action.kind == analysis::ActionKind::HarnessRoot)
            continue;
        std::cout << "  " << action.label << " ("
                  << analysis::actionKindName(action.kind) << ", "
                  << analysis::threadAffinityName(action.affinity)
                  << ")\n";
    }

    std::cout << "\nHB edges by rule:\n";
    for (auto rule :
         {hb::HbRule::Invocation, hb::HbRule::Lifecycle,
          hb::HbRule::GuiOrder, hb::HbRule::AsyncChain,
          hb::HbRule::IntraProcDom, hb::HbRule::InterActionTrans}) {
        std::cout << "  " << hb::hbRuleName(rule) << ": "
                  << analysis.shbg->numEdgesByRule(rule) << "\n";
    }

    std::cout << "\nraces (the paper's bug: background adapter update "
                 "vs scroll):\n";
    for (const auto &pair : analysis.pairs) {
        if (!pair.refuted) {
            std::cout << "  "
                      << pair.toString(*analysis.pta,
                                       analysis.accesses)
                      << "\n";
        }
    }
    std::cout << "\nrefuted candidates: "
              << analysis.racyPairCount() -
                     analysis.survivingRaceCount()
              << "\n";
    return 0;
}
