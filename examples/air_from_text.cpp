/**
 * @file
 * Analyzing an app written directly in AIR textual form -- the
 * workflow a user without the corpus API would follow: write (or dump)
 * AIR text, parse it, attach a manifest/layout, run the detector.
 *
 * The app is a hand-written version of the Fig. 2 receiver race.
 */

#include <iostream>

#include "air/parser.hh"
#include "air/printer.hh"
#include "air/verifier.hh"
#include "sierra/detector.hh"

using namespace sierra;

static const char *kAppText = R"air(
class TinyDb extends java.lang.Object {
    field conn: java.lang.Object
    method <init>(): void regs=1 {
        @0: return-void
    }
    method open(): void regs=2 {
        @0: r1 = new java.lang.Object
        @1: putfield r0.TinyDb.conn = r1
        @2: return-void
    }
    method close(): void regs=2 {
        @0: r1 = null
        @1: putfield r0.TinyDb.conn = r1
        @2: return-void
    }
    method update(): void regs=2 {
        @0: r1 = getfield r0.TinyDb.conn
        @1: return-void
    }
}
class SyncRecv extends android.content.BroadcastReceiver {
    field act: TextApp
    method <init>(p0: TextApp): void regs=2 {
        @0: putfield r0.SyncRecv.act = r1
        @1: return-void
    }
    method onReceive(p0: java.lang.Object, p1: android.content.Intent): void regs=5 {
        @0: r3 = getfield r0.SyncRecv.act
        @1: r4 = getfield r3.TextApp.db
        @2: invoke-virtual TinyDb.update(r4)
        @3: return-void
    }
}
class TextApp extends android.app.Activity {
    field db: TinyDb
    field recv: SyncRecv
    method <init>(): void regs=1 {
        @0: return-void
    }
    method onCreate(): void regs=4 {
        @0: r1 = new TinyDb
        @1: invoke-special TinyDb.<init>(r1)
        @2: putfield r0.TextApp.db = r1
        @3: r2 = new SyncRecv
        @4: invoke-special SyncRecv.<init>(r2, r0)
        @5: putfield r0.TextApp.recv = r2
        @6: r3 = const "tiny.SYNC_DONE"
        @7: invoke-virtual TextApp.registerReceiver(r0, r2, r3)
        @8: return-void
    }
    method onStart(): void regs=2 {
        @0: r1 = getfield r0.TextApp.db
        @1: invoke-virtual TinyDb.open(r1)
        @2: return-void
    }
    method onStop(): void regs=2 {
        @0: r1 = getfield r0.TextApp.db
        @1: invoke-virtual TinyDb.close(r1)
        @2: return-void
    }
}
)air";

int
main()
{
    framework::App app("air-from-text");

    air::ParseStatus status = air::parseInto(app.module(), kAppText);
    if (!status.ok) {
        std::cerr << "parse error at line " << status.errorLine << ": "
                  << status.error << "\n";
        return 1;
    }
    app.manifest().activities.push_back("TextApp");
    app.manifest().mainActivity = "TextApp";

    // The detector installs the framework model and generates the
    // per-activity harness; verify the assembled module first.
    SierraDetector detector(app);
    auto issues = air::verifyModule(app.module());
    if (!issues.empty()) {
        for (const auto &issue : issues)
            std::cerr << "verify: " << issue.toString() << "\n";
        return 1;
    }

    AppReport report = detector.analyze({});
    std::cout << formatReport(report);

    std::cout << "\nThe generated harness for TextApp:\n";
    const air::Klass *harness_cls =
        app.module().getClass("Harness$TextApp");
    std::cout << air::printKlass(*harness_cls);
    return 0;
}
