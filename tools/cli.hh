/**
 * @file
 * The sierra command-line tool, as a library so tests can drive it.
 *
 * Commands:
 *   analyze <file.air> [options]   run the detector on an app bundle
 *   dynamic <file.air> [options]   run the dynamic detector instead
 *   dump <app> [-o file]           write a corpus app as an app bundle
 *   harness <file.air> <activity>  print the generated harness
 *   list                           list corpus apps and patterns
 *   help                           usage
 */

#ifndef SIERRA_TOOLS_CLI_HH
#define SIERRA_TOOLS_CLI_HH

#include <iostream>
#include <string>
#include <vector>

namespace sierra::cli {

/** Run one CLI invocation; returns the process exit code. */
int runCli(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err);

} // namespace sierra::cli

#endif // SIERRA_TOOLS_CLI_HH
