#include "cli.hh"

#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "air/printer.hh"
#include "air/verifier.hh"
#include "analysis/lint.hh"
#include "corpus/generator.hh"
#include "corpus/named_apps.hh"
#include "corpus/patterns.hh"
#include "dynamic/event_racer.hh"
#include "dynamic/race_verifier.hh"
#include "framework/app_text.hh"
#include "serve/serve.hh"
#include "sierra/detector.hh"
#include "util/metrics.hh"
#include "util/trace.hh"

namespace sierra::cli {

namespace {

const char *kUsage = R"(usage: sierra <command> [options]

commands:
  analyze <file.air> [options]   run the static detector on an app bundle
  dynamic <file.air> [options]   run the dynamic (EventRacer-style) detector
  verify <file.air> [options]    statically detect, then verify the surviving
                                 races by hunting both orders dynamically
  lint <file.air> [options]      structural verification plus dataflow
                                 lint (use-before-def, unreachable
                                 blocks, dead stores, leaked
                                 registrations); non-zero exit on any
                                 finding
  dump <app> [-o FILE]           write a corpus app as an app bundle
                                 (<app> is a Table 2 name or fdroid-N)
  harness <file.air> <activity>  print the generated harness for one activity
  actions <file.air> <activity>  print the actions and HB relations of one
                                 activity's harness (SHBG introspection)
  serve [options]                run as a long-lived analysis daemon
                                 speaking jsonl on stdin/stdout (see
                                 docs/DAEMON_PROTOCOL.md)
  list                           list corpus apps and race patterns
  help                           this message

analyze options:
  --policy P        insensitive | k-cfa | k-obj | hybrid | action-sensitive
                    (default: action-sensitive)
  --k N             context depth (default 1)
  --no-refute       skip symbolic refutation
  --no-inflated-view  disable the InflatedViewContext abstraction
  --index-sensitive   per-element array locations (removes the
                      index-insensitivity FP class)
  --node-cache      enable the paper's refuted-node cache
  --jobs N          worker threads for harness analysis and sharded
                    refutation (default: SIERRA_JOBS env var, else
                    hardware concurrency; reports are identical at
                    every N)
  --no-dataflow     disable the dataflow stage (effect prefilter and
                    constant facts in the refuter)
  --no-escape       disable the escape stage (thread-local accesses
                    are kept in the racy-pair loop)
  --no-lockset      disable lock-set refutation (monitor-guarded
                    pairs reach the symbolic refuter)
  --no-ifds         disable the interprocedural constant stage (the
                    refuter loses setter/return summaries and the
                    use-after-destroy section is skipped)
  --no-deadlock     disable the deadlock stage (the lock-dependency
                    cycle search; the deadlocks section is skipped)
  --no-enablement   disable enablement refutation (pairs whose
                    callback is provably unregistered/removed before
                    the other action runs are no longer pruned)
  --no-nullflow     disable null-value-flow severity classification
                    (surviving races lose their HARMFUL/GUARDED/
                    UNKNOWN severity tags and severity-sorted order)
  --no-icc          disable inter-component (Intent) modeling: target
                    activities launched via startActivity/PendingIntent
                    are not driven by the sender's harness, so
                    cross-component races are missed
  --max-races N     cap the printed race list (default 50)
  --show-refuted    also print refuted candidates
  --trace FILE      write a Chrome trace-event JSON profile of the run
                    (open in Perfetto or chrome://tracing; see
                    docs/OBSERVABILITY.md)
  --metrics         collect and print the pipeline metrics registry
                    (embedded under "metrics" with --json)
  --json            machine-readable output

lint options:
  --errors-only     report only errors (skip warnings)
  --json            machine-readable output: a JSON array of findings
                    with severity/where/message fields ("[]" when
                    clean; exit codes are unchanged)

dynamic options:
  --schedules N     randomized schedules to run (default 3)
  --seed N          base RNG seed (default 1)
  --no-coverage-filter  disable the race-coverage filter

serve options:
  --store DIR       persist the artifact store to DIR so later daemon
                    runs warm-start from it (default: memory only;
                    caching model in docs/CACHING.md)
  --socket PATH     listen on a Unix domain socket instead of
                    stdin/stdout (one connection at a time)
  --jobs N          default worker threads per analyze request
                    (overridable per request)
)";

struct ParsedFlags {
    std::map<std::string, std::string> values;
    std::vector<std::string> positional;
    std::string error;

    bool has(const std::string &flag) const { return values.count(flag); }
    std::string
    get(const std::string &flag, const std::string &fallback = "") const
    {
        auto it = values.find(flag);
        return it == values.end() ? fallback : it->second;
    }
    int
    getInt(const std::string &flag, int fallback) const
    {
        auto it = values.find(flag);
        if (it == values.end())
            return fallback;
        try {
            return std::stoi(it->second);
        } catch (...) {
            return fallback;
        }
    }
};

/** Flags that take a value; all others are booleans. */
bool
flagTakesValue(const std::string &flag)
{
    static const char *valued[] = {"--policy", "--k", "--max-races",
                                   "--jobs", "--schedules", "--seed",
                                   "--trace", "--store", "--socket",
                                   "-o"};
    for (const char *v : valued) {
        if (flag == v)
            return true;
    }
    return false;
}

ParsedFlags
parseFlags(const std::vector<std::string> &args, size_t start)
{
    ParsedFlags out;
    for (size_t i = start; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a.rfind("-", 0) != 0) {
            out.positional.push_back(a);
            continue;
        }
        if (flagTakesValue(a)) {
            if (i + 1 >= args.size()) {
                out.error = a + " requires a value";
                return out;
            }
            out.values[a] = args[++i];
        } else {
            out.values[a] = "1";
        }
    }
    return out;
}

bool
policyFromName(const std::string &name, analysis::ContextPolicy &out)
{
    using analysis::ContextPolicy;
    static const struct {
        const char *n;
        ContextPolicy p;
    } table[] = {
        {"insensitive", ContextPolicy::Insensitive},
        {"k-cfa", ContextPolicy::KCfa},
        {"k-obj", ContextPolicy::KObj},
        {"hybrid", ContextPolicy::Hybrid},
        {"action-sensitive", ContextPolicy::ActionSensitive},
    };
    for (const auto &e : table) {
        if (name == e.n) {
            out = e.p;
            return true;
        }
    }
    return false;
}

/** Load an app bundle or a corpus app named on the command line. */
std::unique_ptr<framework::App>
loadApp(const std::string &spec, std::ostream &err)
{
    std::ifstream in(spec);
    if (!in) {
        err << "error: cannot open '" << spec << "'\n";
        return nullptr;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    framework::AppTextResult result =
        framework::parseAppText(buffer.str());
    if (!result.ok()) {
        err << "error: " << spec << ":" << result.errorLine << ": "
            << result.error << "\n";
        return nullptr;
    }
    return std::move(result.app);
}

/** Build a corpus app by name ("OpenSudoku" or "fdroid-17"). */
corpus::BuiltApp
buildCorpusApp(const std::string &name, bool &ok, std::ostream &err)
{
    ok = true;
    if (name.rfind("fdroid-", 0) == 0) {
        int index = -1;
        try {
            index = std::stoi(name.substr(7));
        } catch (...) {
        }
        if (index < 0 || index >= corpus::kFdroidAppCount) {
            err << "error: fdroid index out of range (0-"
                << corpus::kFdroidAppCount - 1 << ")\n";
            ok = false;
            return {};
        }
        return corpus::buildFdroidApp(index);
    }
    for (const auto &spec : corpus::namedAppSpecs()) {
        if (spec.name == name)
            return corpus::buildNamedApp(spec);
    }
    err << "error: unknown corpus app '" << name
        << "' (try 'sierra list')\n";
    ok = false;
    return {};
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

void
printReportJson(const AppReport &report, std::ostream &out,
                const util::metrics::Registry *metrics = nullptr)
{
    out << "{\n";
    // Bumped whenever a field is added, renamed or retyped, so
    // downstream consumers can gate on the shape they understand.
    // v3: per-race severity + provenance, harmful/guarded tallies,
    // timesMs gains the nullflow stage.
    out << "  \"schemaVersion\": 3,\n";
    out << "  \"app\": \"" << jsonEscape(report.app) << "\",\n";
    out << "  \"harnesses\": " << report.harnesses << ",\n";
    out << "  \"actions\": " << report.actions << ",\n";
    out << "  \"hbEdges\": " << report.hbEdges << ",\n";
    out << "  \"orderedPct\": " << report.orderedPct << ",\n";
    out << "  \"racyPairs\": " << report.racyPairs << ",\n";
    out << "  \"afterRefutation\": " << report.afterRefutation << ",\n";
    out << "  \"locksetRefuted\": " << report.locksetRefuted << ",\n";
    out << "  \"enablementRefuted\": " << report.enablementRefuted
        << ",\n";
    out << "  \"harmfulRaces\": " << report.harmfulRaces << ",\n";
    out << "  \"guardedRaces\": " << report.guardedRaces << ",\n";
    out << "  \"accessesDropped\": " << report.accessesDropped << ",\n";
    // Generated from the same entry list as the text `time:` line, so
    // every StageTimes field is present (report_times_test pins this).
    out << "  \"timesMs\": {";
    bool first_time = true;
    for (const StageTimeEntry &e : stageTimeEntries(report)) {
        out << (first_time ? "" : ", ") << "\"" << e.jsonName
            << "\": " << e.seconds * 1e3;
        first_time = false;
    }
    out << "},\n";
    if (metrics)
        out << "  \"metrics\": " << metrics->toJson() << ",\n";
    out << "  \"useAfterDestroy\": [";
    for (size_t i = 0; i < report.useAfterDestroy.size(); ++i) {
        const auto &f = report.useAfterDestroy[i];
        out << (i ? ",\n    " : "\n    ")
            << "{\"field\": \"" << jsonEscape(f.fieldKey)
            << "\", \"teardownAction\": \""
            << jsonEscape(f.teardownAction) << "\", \"useAction\": \""
            << jsonEscape(f.useAction)
            << "\", \"writeMethod\": \"" << jsonEscape(f.writeMethod)
            << "\", \"readMethod\": \"" << jsonEscape(f.readMethod)
            << "\"}";
    }
    out << (report.useAfterDestroy.empty() ? "],\n" : "\n  ],\n");
    out << "  \"deadlocks\": [";
    for (size_t i = 0; i < report.deadlocks.size(); ++i) {
        const auto &f = report.deadlocks[i];
        out << (i ? ",\n    " : "\n    ") << "{\"edges\": [";
        for (size_t j = 0; j < f.edges.size(); ++j) {
            const auto &e = f.edges[j];
            out << (j ? ", " : "") << "{\"heldLock\": \""
                << jsonEscape(e.heldLock) << "\", \"acquiredLock\": \""
                << jsonEscape(e.acquiredLock) << "\", \"method\": \""
                << jsonEscape(e.method)
                << "\", \"instrIdx\": " << e.instrIdx
                << ", \"action\": \"" << jsonEscape(e.actionLabel)
                << "\"}";
        }
        out << "]}";
    }
    out << (report.deadlocks.empty() ? "],\n" : "\n  ],\n");
    out << "  \"races\": [\n";
    bool first = true;
    for (const auto &race : report.races) {
        if (!first)
            out << ",\n";
        first = false;
        out << "    {\"location\": \"" << jsonEscape(race.fieldKey)
            << "\", \"priority\": " << race.priority
            << ", \"refuted\": " << (race.refuted ? "true" : "false")
            << ", \"severity\": \""
            << analysis::nullVerdictName(race.severity)
            << "\", \"provenance\": \""
            << jsonEscape(race.severityChain)
            << "\", \"description\": \""
            << jsonEscape(race.description) << "\"}";
    }
    out << "\n  ]\n}\n";
}

int
cmdAnalyze(const ParsedFlags &flags, std::ostream &out,
           std::ostream &err)
{
    if (flags.positional.empty()) {
        err << "error: analyze needs an app bundle file\n";
        return 2;
    }
    auto app = loadApp(flags.positional[0], err);
    if (!app)
        return 1;

    SierraOptions options;
    if (flags.has("--policy")) {
        if (!policyFromName(flags.get("--policy"),
                            options.pta.ctx.policy)) {
            err << "error: unknown policy '" << flags.get("--policy")
                << "'\n";
            return 2;
        }
    }
    options.pta.ctx.k = flags.getInt("--k", 1);
    options.pta.ctx.heapK = options.pta.ctx.k;
    options.runRefutation = !flags.has("--no-refute");
    options.pta.ctx.inflatedViewContext =
        !flags.has("--no-inflated-view");
    options.refuter.exec.useNodeCache = flags.has("--node-cache");
    options.pta.indexSensitiveArrays = flags.has("--index-sensitive");
    options.jobs = flags.getInt("--jobs", 0);
    if (flags.has("--no-dataflow")) {
        options.effectPrefilter = false;
        options.refuter.exec.useConstFacts = false;
    }
    options.escapeFilter = !flags.has("--no-escape");
    options.locksetRefutation = !flags.has("--no-lockset");
    options.ifds = !flags.has("--no-ifds");
    options.deadlock = !flags.has("--no-deadlock");
    options.enablement = !flags.has("--no-enablement");
    options.nullflow = !flags.has("--no-nullflow");
    options.icc = !flags.has("--no-icc");

    util::metrics::Registry registry;
    const bool want_metrics = flags.has("--metrics");
    if (want_metrics)
        options.metrics = &registry;
    const std::string trace_path = flags.get("--trace");
    if (!trace_path.empty())
        util::trace::start();

    // ICC acts at harness generation, so the options must reach the
    // constructor, not just analyze().
    SierraDetector detector(*app, options);
    AppReport report = detector.analyze(options);

    int status = 0;
    if (!trace_path.empty() &&
        !util::trace::writeJson(trace_path)) {
        err << "error: cannot write trace file '" << trace_path
            << "'\n";
        status = 1;
    }

    if (flags.has("--json")) {
        printReportJson(report, out,
                        want_metrics ? &registry : nullptr);
        return status;
    }
    out << formatReport(report, flags.getInt("--max-races", 50));
    if (want_metrics)
        out << "\n" << registry.toText();
    if (flags.has("--show-refuted")) {
        out << "refuted candidates:\n";
        for (const auto &race : report.races) {
            if (race.refuted)
                out << "  " << race.description << "\n";
        }
    }
    return status;
}

int
cmdDynamic(const ParsedFlags &flags, std::ostream &out,
           std::ostream &err)
{
    if (flags.positional.empty()) {
        err << "error: dynamic needs an app bundle file\n";
        return 2;
    }
    auto app = loadApp(flags.positional[0], err);
    if (!app)
        return 1;

    dynamic::EventRacerOptions options;
    options.numSchedules = flags.getInt("--schedules", 3);
    options.run.seed =
        static_cast<uint32_t>(flags.getInt("--seed", 1));
    options.raceCoverageFilter = !flags.has("--no-coverage-filter");

    dynamic::EventRacerReport report = runEventRacer(*app, options);
    out << "schedules: " << report.schedulesRun
        << "  events: " << report.eventsExecuted
        << "  raw races: " << report.rawRaceCount << "\n";
    for (const auto &race : report.races) {
        out << "  " << (race.filteredByCoverage ? "(filtered) " : "")
            << race.fieldKey << ": " << race.event1 << " || "
            << race.event2 << "\n";
    }
    return 0;
}

int
cmdVerify(const ParsedFlags &flags, std::ostream &out,
          std::ostream &err)
{
    if (flags.positional.empty()) {
        err << "error: verify needs an app bundle file\n";
        return 2;
    }
    auto app = loadApp(flags.positional[0], err);
    if (!app)
        return 1;

    SierraDetector detector(*app);
    SierraOptions static_options;
    static_options.jobs = flags.getInt("--jobs", 0);
    AppReport report = detector.analyze(static_options);
    std::set<std::string> key_set;
    for (const auto &race : report.races) {
        if (!race.refuted)
            key_set.insert(race.fieldKey);
    }
    std::vector<std::string> keys(key_set.begin(), key_set.end());

    dynamic::RaceVerifierOptions options;
    options.numSchedules = flags.getInt("--schedules", 8);
    options.run.seed = static_cast<uint32_t>(flags.getInt("--seed", 1));
    dynamic::RaceVerificationReport verification =
        verifyRacesDynamically(*app, keys, options);

    out << "static reports: " << keys.size() << "\n";
    out << "  confirmed (both orders observed): "
        << verification.confirmed << "\n";
    out << "  conflict observed (single order): "
        << verification.observed << "\n";
    out << "  never observed (schedules missed them): "
        << verification.unobserved << "\n";
    for (const auto &race : verification.races) {
        const char *tag = race.bothOrdersObserved ? "CONFIRMED "
                          : race.conflictObserved ? "observed  "
                                                  : "unobserved";
        out << "  " << tag << " " << race.fieldKey << " ("
            << race.schedulesWithConflict << " schedules)\n";
    }
    return 0;
}

int
cmdLint(const ParsedFlags &flags, std::ostream &out, std::ostream &err)
{
    if (flags.positional.empty()) {
        err << "error: lint needs an app bundle file\n";
        return 2;
    }
    auto app = loadApp(flags.positional[0], err);
    if (!app)
        return 1;

    std::vector<air::VerifyIssue> issues =
        air::verifyModule(app->module());
    for (air::VerifyIssue &issue :
         analysis::lintModule(app->module())) {
        issues.push_back(std::move(issue));
    }

    const bool errors_only = flags.has("--errors-only");
    if (flags.has("--json")) {
        // Same findings and exit codes as the text form, as a JSON
        // array (one object per finding, "[]" when clean).
        int shown = 0;
        out << "[";
        for (const air::VerifyIssue &issue : issues) {
            if (errors_only && issue.severity != air::Severity::Error)
                continue;
            out << (shown ? ",\n " : "\n ") << "{\"severity\": \""
                << air::severityName(issue.severity)
                << "\", \"where\": \"" << jsonEscape(issue.where)
                << "\", \"message\": \"" << jsonEscape(issue.message)
                << "\"}";
            ++shown;
        }
        out << (shown ? "\n]\n" : "]\n");
        return shown == 0 ? 0 : 1;
    }
    int shown = 0;
    for (const air::VerifyIssue &issue : issues) {
        if (errors_only && issue.severity != air::Severity::Error)
            continue;
        out << issue.toString() << "\n";
        ++shown;
    }
    if (shown == 0) {
        out << "no issues\n";
        return 0;
    }
    out << shown << " issue(s)\n";
    return 1;
}

int
cmdDump(const ParsedFlags &flags, std::ostream &out, std::ostream &err)
{
    if (flags.positional.empty()) {
        err << "error: dump needs a corpus app name\n";
        return 2;
    }
    bool ok = false;
    corpus::BuiltApp built =
        buildCorpusApp(flags.positional[0], ok, err);
    if (!ok)
        return 1;
    std::string text = framework::printAppText(*built.app);
    if (flags.has("-o")) {
        std::ofstream file(flags.get("-o"));
        if (!file) {
            err << "error: cannot write '" << flags.get("-o") << "'\n";
            return 1;
        }
        file << text;
        out << "wrote " << text.size() << " bytes to "
            << flags.get("-o") << "\n";
    } else {
        out << text;
    }
    return 0;
}

int
cmdActions(const ParsedFlags &flags, std::ostream &out,
           std::ostream &err)
{
    if (flags.positional.size() < 2) {
        err << "error: actions needs <file.air> <activity>\n";
        return 2;
    }
    auto app = loadApp(flags.positional[0], err);
    if (!app)
        return 1;
    if (!app->manifest().hasActivity(flags.positional[1])) {
        err << "error: no such activity '" << flags.positional[1]
            << "'\n";
        return 1;
    }
    SierraDetector detector(*app);
    SierraOptions options;
    options.runRefutation = false;
    HarnessAnalysis ha =
        detector.analyzeActivity(flags.positional[1], options);

    out << "actions (" << ha.numActions() << "):\n";
    for (const auto &action : ha.pta->actions.all()) {
        if (action.kind == analysis::ActionKind::HarnessRoot)
            continue;
        out << "  [" << action.id << "] "
            << analysis::actionKindName(action.kind) << " "
            << action.label << " ("
            << analysis::threadAffinityName(action.affinity);
        if (action.messageWhat >= 0)
            out << ", what=" << action.messageWhat;
        if (action.creator > 0)
            out << ", creator=" << action.creator;
        out << ")\n";
    }
    out << "\nHB edges by rule:\n";
    for (auto rule :
         {hb::HbRule::Invocation, hb::HbRule::Lifecycle,
          hb::HbRule::GuiOrder, hb::HbRule::AsyncChain,
          hb::HbRule::IntraProcDom, hb::HbRule::InterProcDom,
          hb::HbRule::InterActionTrans}) {
        out << "  " << hb::hbRuleName(rule) << ": "
            << ha.shbg->numEdgesByRule(rule) << "\n";
    }
    out << "closure: " << ha.shbg->numClosurePairs()
        << " ordered pairs ("
        << static_cast<int>(100 * ha.shbg->orderedFraction() + 0.5)
        << "%)\n";
    return 0;
}

int
cmdHarness(const ParsedFlags &flags, std::ostream &out,
           std::ostream &err)
{
    if (flags.positional.size() < 2) {
        err << "error: harness needs <file.air> <activity>\n";
        return 2;
    }
    auto app = loadApp(flags.positional[0], err);
    if (!app)
        return 1;
    if (!app->manifest().hasActivity(flags.positional[1])) {
        err << "error: no such activity '" << flags.positional[1]
            << "'\n";
        return 1;
    }
    SierraDetector detector(*app);
    const air::Klass *harness_cls = app->module().getClass(
        "Harness$" + flags.positional[1]);
    out << air::printKlass(*harness_cls);
    return 0;
}

int
cmdServe(const ParsedFlags &flags, std::ostream &out,
         std::ostream &err)
{
    serve::ServeOptions options;
    options.storeDir = flags.get("--store");
    options.jobs = flags.getInt("--jobs", 0);
    if (flags.has("--socket"))
        return serve::serveSocket(flags.get("--socket"), options, err);
    // stdin/stdout transport: requests arrive on std::cin; `out` is
    // the session's response stream (the tests pass stringstreams).
    serve::serveLoop(std::cin, out, options);
    return 0;
}

int
cmdList(std::ostream &out)
{
    out << "corpus apps (paper Table 2):\n";
    for (const auto &spec : corpus::namedAppSpecs()) {
        out << "  " << spec.name << " (" << spec.activities
            << " activities)\n";
    }
    out << "synthetic apps: fdroid-0 .. fdroid-"
        << corpus::kFdroidAppCount - 1 << "\n";
    out << "race patterns:\n";
    for (const auto &entry : corpus::patternCatalog()) {
        out << "  " << entry.name << " (" << entry.seededTrueRaces
            << " true races, " << entry.seededTraps << " traps)\n";
    }
    return 0;
}

} // namespace

int
runCli(const std::vector<std::string> &args, std::ostream &out,
       std::ostream &err)
{
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
        out << kUsage;
        return args.empty() ? 2 : 0;
    }
    const std::string &command = args[0];
    ParsedFlags flags = parseFlags(args, 1);
    if (!flags.error.empty()) {
        err << "error: " << flags.error << "\n";
        return 2;
    }
    if (command == "analyze")
        return cmdAnalyze(flags, out, err);
    if (command == "dynamic")
        return cmdDynamic(flags, out, err);
    if (command == "verify")
        return cmdVerify(flags, out, err);
    if (command == "lint")
        return cmdLint(flags, out, err);
    if (command == "dump")
        return cmdDump(flags, out, err);
    if (command == "harness")
        return cmdHarness(flags, out, err);
    if (command == "actions")
        return cmdActions(flags, out, err);
    if (command == "serve")
        return cmdServe(flags, out, err);
    if (command == "list")
        return cmdList(out);
    err << "error: unknown command '" << command
        << "' (try 'sierra help')\n";
    return 2;
}

} // namespace sierra::cli
