#!/usr/bin/env bash
# Markdown link-and-anchor checker for the repo docs.
#
# Validates every relative link in the checked markdown files:
#   - the target file exists (resolved from the containing file's dir)
#   - a `#fragment`, when present, matches a heading in the target
#     (GitHub slugification: lowercase, spaces -> '-', punctuation
#     stripped) or an explicit <a name="..."> anchor
# External links (http/https/mailto) and bare anchors into the same
# file are checked for the anchor only. Code fences are skipped so
# example snippets can't trip the checker.
#
# Usage: tools/check_links.sh [file.md ...]
#        (no args: README.md, *.md at the repo root, and docs/*.md)
set -uo pipefail

cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    while IFS= read -r f; do files+=("$f"); done \
        < <(ls ./*.md 2>/dev/null; ls docs/*.md 2>/dev/null)
fi

# slugify <heading text> -> github anchor id
slugify() {
    printf '%s\n' "$1" |
        tr '[:upper:]' '[:lower:]' |
        sed -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

# anchors_of <file>: one slug per line (headings outside code fences,
# plus explicit <a name=...> / <a id=...> anchors). Duplicate headings
# get -1, -2, ... suffixes like GitHub.
anchors_of() {
    local file="$1"
    awk '
        /^(```|~~~)/ { fence = !fence; next }
        fence { next }
        /^#+ / {
            sub(/^#+ +/, "")
            sub(/ +#* *$/, "")
            print
        }
    ' "$file" | while IFS= read -r heading; do
        slugify "$heading"
    done | awk '{ n = seen[$0]++; print n ? $0 "-" n : $0 }'
    grep -o '<a [^>]*\(name\|id\)="[^"]*"' "$file" 2>/dev/null |
        sed 's/.*="\([^"]*\)".*/\1/'
}

errors=0
report() {
    echo "ERROR: $1" >&2
    errors=$((errors + 1))
}

for file in "${files[@]}"; do
    [ -f "$file" ] || { report "$file: no such file"; continue; }
    dir=$(dirname "$file")

    # Extract inline links `[text](target)` outside code fences; strip
    # inline code spans so `[i](x)`-looking code is ignored.
    links=$(awk '
        /^(```|~~~)/ { fence = !fence; next }
        fence { next }
        {
            line = $0
            gsub(/`[^`]*`/, "", line)
            while (match(line, /\]\([^)]+\)/)) {
                print substr(line, RSTART + 2, RLENGTH - 3)
                line = substr(line, RSTART + RLENGTH)
            }
        }
    ' "$file")

    while IFS= read -r link; do
        [ -n "$link" ] || continue
        # Drop optional '"title"' suffixes and surrounding <>.
        link=${link%% \"*}
        link=${link#<}; link=${link%>}
        case "$link" in
          http://*|https://*|mailto:*) continue ;;
        esac

        target=${link%%#*}
        fragment=""
        case "$link" in *#*) fragment=${link#*#} ;; esac

        if [ -z "$target" ]; then
            resolved="$file" # same-file anchor
        else
            resolved="$dir/$target"
        fi
        if [ ! -e "$resolved" ]; then
            report "$file: broken link '$link' ($resolved not found)"
            continue
        fi
        if [ -n "$fragment" ] && [[ "$resolved" == *.md ]]; then
            anchors=$(anchors_of "$resolved")
            if ! grep -qxF "$fragment" <<< "$anchors"; then
                report "$file: broken anchor '#$fragment' in '$link'"
            fi
        fi
    done <<< "$links"
done

if [ "$errors" -gt 0 ]; then
    echo "$errors broken link(s)" >&2
    exit 1
fi
echo "all markdown links OK (${#files[@]} files)"
