#!/usr/bin/env python3
"""End-to-end smoke test for `sierra serve` (the CI serve-smoke job).

Exercises what the unit tests cannot: the real binary, over real
stdio, across two daemon *processes* sharing one on-disk store.

  1. Process A (fresh store): submit an app -> cold, everything
     computed; submit it again -> warm in-process.
  2. Process B (same store dir): submit the same bundle -> warm
     across processes (the disk store faults the artifacts in), and
     the report is byte-identical to process A's cold report.
  3. Process B: submit a one-method nop edit -> exactly one method
     changed, at least one harness artifact still reuses.

Exit 0 on success; prints the failing check and exits 1 otherwise.
Usage: tools/serve_smoke.py [path/to/sierra]
"""

import json
import subprocess
import sys
import tempfile

SIERRA = sys.argv[1] if len(sys.argv) > 1 else "./build/tools/sierra"
APP = "OpenSudoku"

failures = []


def check(cond, what):
    print(("ok   " if cond else "FAIL ") + what)
    if not cond:
        failures.append(what)


def session(store, requests):
    """Run one `sierra serve --store` process over stdio; return the
    parsed response for each request."""
    lines = [json.dumps(r, separators=(",", ":")) for r in requests]
    proc = subprocess.run(
        [SIERRA, "serve", "--store", store],
        input="\n".join(lines) + "\n",
        capture_output=True,
        text=True,
        timeout=300,
    )
    out = [json.loads(l) for l in proc.stdout.splitlines() if l.strip()]
    check(proc.returncode == 0, "daemon exited cleanly")
    check(len(out) == len(requests), "one response per request")
    return out


def store_info(response):
    return response["result"]["store"]


def main():
    dump = subprocess.run(
        [SIERRA, "dump", APP], capture_output=True, text=True, check=True
    ).stdout

    # A benign edit: retarget one return-void to a nop + return-void.
    needle = "@6: return-void"
    assert needle in dump, "corpus layout changed; pick a new edit site"
    edited = dump.replace(needle, "@6: nop\n        @7: return-void", 1)

    with tempfile.TemporaryDirectory(prefix="sierra-store-") as store:
        # --- process A: cold, then warm in-process ---
        a = session(
            store,
            [
                {"id": 1, "kind": "analyze", "app": dump},
                {"id": 2, "kind": "analyze", "app": dump},
                {"id": 3, "kind": "shutdown"},
            ],
        )
        cold, warm = store_info(a[0]), store_info(a[1])
        cold_report = a[0]["result"]["report"]
        check(cold["firstSubmission"], "process A first submission is cold")
        check(cold["harnessesComputed"] > 0, "cold computes harnesses")
        check(warm["harnessesComputed"] == 0, "in-process warm computes nothing")
        check(warm["methodsChanged"] == 0, "in-process warm changes no methods")
        check(
            a[1]["result"]["report"] == cold_report,
            "in-process warm report is byte-identical",
        )

        # --- process B: same store, warm across processes ---
        b = session(
            store,
            [
                {"id": 1, "kind": "analyze", "app": dump},
                {"id": 2, "kind": "analyze", "app": edited},
                {"id": 3, "kind": "stats"},
                {"id": 4, "kind": "shutdown"},
            ],
        )
        xwarm, edit = store_info(b[0]), store_info(b[1])
        check(
            not xwarm["firstSubmission"],
            "process B sees process A's submission",
        )
        check(
            xwarm["harnessesComputed"] == 0 and xwarm["harnessesReused"] > 0,
            "cross-process warm reuses every harness artifact",
        )
        check(xwarm["methodsChanged"] == 0, "cross-process warm changes no methods")
        check(
            b[0]["result"]["report"] == cold_report,
            "cross-process warm report is byte-identical to cold",
        )
        check(edit["methodsChanged"] == 1, "nop edit dirties exactly one method")
        check(edit["harnessesReused"] > 0, "edit still reuses untouched harnesses")
        counters = b[2]["result"]["counters"]
        check(
            counters.get("store.harness_hits", 0) > 0,
            "store.harness_hits counter is live",
        )
        check(
            b[2]["result"]["store"]["diskReads"] > 0,
            "process B faulted artifacts in from disk",
        )

    if failures:
        print(f"\n{len(failures)} serve-smoke check(s) failed")
        return 1
    print("\nserve-smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
