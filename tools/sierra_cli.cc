/** @file Entry point for the sierra command-line tool. */

#include "cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return sierra::cli::runCli(args, std::cout, std::cerr);
}
