#!/usr/bin/env bash
# CI entry point: configure, build, and run the test suite in four
# flavors -- plain, AddressSanitizer, ThreadSanitizer, and
# UndefinedBehaviorSanitizer. Each flavor uses its own build directory
# so the configurations never clobber each other; pass extra ctest args
# after "--" (e.g. tools/check.sh -- -R Lint).
#
# The extra "notrace" flavor builds with -DSIERRA_DISABLE_TRACING=ON,
# proving the suite passes with every SIERRA_TRACE_* call site compiled
# out (the observability layer must be optional, not load-bearing).
#
# Usage: tools/check.sh [plain|asan|tsan|ubsan|notrace|all] [-- <ctest args...>]
set -euo pipefail

cd "$(dirname "$0")/.."

flavor="${1:-all}"
shift || true
if [ "${1:-}" = "--" ]; then shift; fi
ctest_args=("$@")

jobs="${SIERRA_BUILD_JOBS:-$(nproc 2>/dev/null || echo 2)}"

# Docs are part of the contract: broken links or anchors fail the run
# before any flavor builds (cheap, catches doc rot early).
echo "=== docs: markdown link check ==="
tools/check_links.sh

run_flavor() {
    local name="$1" dir="$2" sanitize="$3"
    shift 3
    echo "=== ${name}: configure + build (${dir}) ==="
    cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSIERRA_SANITIZE="${sanitize}" "$@" >/dev/null
    cmake --build "${dir}" -j "${jobs}"
    echo "=== ${name}: ctest ==="
    (cd "${dir}" && ctest --output-on-failure -j "${jobs}" "${ctest_args[@]+"${ctest_args[@]}"}")
}

case "${flavor}" in
  plain) run_flavor plain build "" ;;
  asan)  run_flavor asan build-asan address ;;
  tsan)  run_flavor tsan build-tsan thread ;;
  ubsan) run_flavor ubsan build-ubsan undefined ;;
  notrace) run_flavor notrace build-notrace "" -DSIERRA_DISABLE_TRACING=ON ;;
  all)
    run_flavor plain build ""
    run_flavor asan build-asan address
    run_flavor tsan build-tsan thread
    run_flavor ubsan build-ubsan undefined
    run_flavor notrace build-notrace "" -DSIERRA_DISABLE_TRACING=ON
    ;;
  *)
    echo "usage: tools/check.sh [plain|asan|tsan|ubsan|notrace|all] [-- <ctest args>]" >&2
    exit 2
    ;;
esac
echo "=== all requested flavors passed ==="
