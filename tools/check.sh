#!/usr/bin/env bash
# CI entry point: configure, build, and run the test suite in four
# flavors -- plain, AddressSanitizer, ThreadSanitizer, and
# UndefinedBehaviorSanitizer. Each flavor uses its own build directory
# so the configurations never clobber each other; pass extra ctest args
# after "--" (e.g. tools/check.sh -- -R Lint).
#
# The extra "notrace" flavor builds with -DSIERRA_DISABLE_TRACING=ON,
# proving the suite passes with every SIERRA_TRACE_* call site compiled
# out (the observability layer must be optional, not load-bearing).
#
# The "tidy" flavor runs clang-tidy (checks pinned in .clang-tidy)
# over src/ via a compile_commands.json export; it is skipped with a
# notice when clang-tidy is not installed, so plain containers still
# pass. It is not part of "all" -- CI runs it as its own job.
#
# Usage: tools/check.sh [plain|asan|tsan|ubsan|notrace|tidy|all] [-- <ctest args...>]
set -euo pipefail

cd "$(dirname "$0")/.."

flavor="${1:-all}"
shift || true
if [ "${1:-}" = "--" ]; then shift; fi
ctest_args=("$@")

jobs="${SIERRA_BUILD_JOBS:-$(nproc 2>/dev/null || echo 2)}"

# Docs are part of the contract: broken links or anchors fail the run
# before any flavor builds (cheap, catches doc rot early).
echo "=== docs: markdown link check ==="
tools/check_links.sh

run_flavor() {
    local name="$1" dir="$2" sanitize="$3"
    shift 3
    echo "=== ${name}: configure + build (${dir}) ==="
    cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSIERRA_SANITIZE="${sanitize}" "$@" >/dev/null
    cmake --build "${dir}" -j "${jobs}"
    echo "=== ${name}: ctest ==="
    (cd "${dir}" && ctest --output-on-failure -j "${jobs}" "${ctest_args[@]+"${ctest_args[@]}"}")
}

run_tidy() {
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "=== tidy: clang-tidy not installed, skipping ==="
        return 0
    fi
    echo "=== tidy: configure (compile_commands.json) ==="
    cmake -B build-tidy -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    echo "=== tidy: clang-tidy over src/ ==="
    find src -name '*.cc' -print0 |
        xargs -0 -P "${jobs}" -n 8 clang-tidy -p build-tidy --quiet
}

case "${flavor}" in
  plain) run_flavor plain build "" ;;
  asan)  run_flavor asan build-asan address ;;
  tsan)  run_flavor tsan build-tsan thread ;;
  ubsan) run_flavor ubsan build-ubsan undefined ;;
  notrace) run_flavor notrace build-notrace "" -DSIERRA_DISABLE_TRACING=ON ;;
  tidy) run_tidy ;;
  all)
    run_flavor plain build ""
    run_flavor asan build-asan address
    run_flavor tsan build-tsan thread
    run_flavor ubsan build-ubsan undefined
    run_flavor notrace build-notrace "" -DSIERRA_DISABLE_TRACING=ON
    ;;
  *)
    echo "usage: tools/check.sh [plain|asan|tsan|ubsan|notrace|tidy|all] [-- <ctest args>]" >&2
    exit 2
    ;;
esac
echo "=== all requested flavors passed ==="
